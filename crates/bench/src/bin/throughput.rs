//! Inference throughput: sequential vs. batched vs. blocked execution.
//!
//! Establishes the repo's performance trajectory (`BENCH_throughput.json`
//! at the repo root): samples/sec and crossbar MVMs/sec for the
//! per-sample `HardwareNetwork::forward` path against the amortized
//! data-parallel `forward_batch` path across thread counts, a
//! single-thread sweep of the cache-blocked kernel at pinned block
//! sizes, a single-thread sweep of the pluggable kernel backends
//! (`Backend::all()`), and the compile-cache statistics the
//! repeated-compile pattern sweeps use. `host_parallelism` records how
//! many CPUs the host
//! actually exposes — thread counts above it cannot speed anything up,
//! so speedup rows must be read against it.
//!
//! The batched path is required to be bit-identical to the sequential
//! path; this harness re-verifies that on the measured batch before
//! reporting.
//!
//! With `--gate` the run doubles as the CI perf smoke: it exits
//! non-zero unless bit identity holds and the measured speedups clear
//! the host-appropriate floor (4-thread ≥ 2× over 1-thread on hosts
//! with ≥ 4 CPUs; otherwise 1-thread batched ≥ 2× over sequential,
//! since thread scaling is physically unobservable without cores).
//!
//! ```text
//! cargo run --release --bin throughput              # full measurement
//! cargo run --release --bin throughput -- --smoke   # CI-sized
//! cargo run --release --bin throughput -- --smoke --gate  # perf gate
//! cargo run --release --bin throughput -- --samples 512 --reps 7
//! ```

use std::time::Instant;

use resipe::cache::CompileCache;
use resipe::inference::{CompileOptions, HardwareNetwork, RunOptions};
use resipe::kernel::Backend;
use resipe_bench::Args;
use resipe_nn::data::synth_digits;
use resipe_nn::models;
use resipe_nn::train::{Sgd, TrainConfig};

struct Measurement {
    elapsed_s: f64,
    samples_per_sec: f64,
    mvms_per_sec: f64,
}

/// Times `op` over `reps` repetitions (after one warmup) and reports the
/// best repetition — the least-noisy estimator on a shared machine.
fn measure<F: FnMut()>(hw: &HardwareNetwork, n: usize, reps: usize, mut op: F) -> Measurement {
    op(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        op();
        best = best.min(start.elapsed().as_secs_f64());
    }
    hw.reset_mvm_count();
    op();
    let mvms = hw.mvm_count();
    hw.reset_mvm_count();
    Measurement {
        elapsed_s: best,
        samples_per_sec: n as f64 / best,
        mvms_per_sec: mvms as f64 / best,
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let n_train = args.usize_of("train", if smoke { 200 } else { 600 });
    let epochs = args.usize_of("epochs", if smoke { 2 } else { 6 });
    let n_samples = args.usize_of("samples", if smoke { 64 } else { 256 });
    let reps = args.usize_of("reps", if smoke { 2 } else { 9 }).max(1);
    let out_path = args
        .value_of("out")
        .unwrap_or("BENCH_throughput.json")
        .to_owned();
    let thread_counts: Vec<usize> = args
        .value_of("threads")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    eprintln!("training MLP-1 on {n_train} synthetic digits ({epochs} epochs)...");
    let train = synth_digits(n_train, 1).expect("dataset");
    let mut net = models::mlp1(7).expect("model");
    Sgd::new(TrainConfig::new(epochs).with_learning_rate(0.1))
        .fit(&mut net, &train)
        .expect("training");
    let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).expect("calib");

    // Compile through the LRU cache: the second request for the same
    // (model, calibration, options) fingerprint must be a hit — the
    // amortization sweeps rely on.
    let opts = CompileOptions::paper();
    let mut cache = CompileCache::new(4);
    let hw = cache.get_or_compile(&net, &calib, &opts).expect("compile");
    let hw = {
        let again = cache.get_or_compile(&net, &calib, &opts).expect("cached");
        assert_eq!(cache.hits(), 1, "repeat compile must hit the cache");
        again.reset_mvm_count();
        drop(hw);
        again
    };

    // One measured batch, recycled from the training set.
    let indices: Vec<usize> = (0..n_samples).map(|i| i % train.len()).collect();
    let (x, _) = train.batch(&indices).expect("batch");

    // The determinism contract, verified on the measured batch.
    let reference = hw.forward(&x).expect("sequential forward");
    let batched = hw.forward_batch(&x).expect("batched forward");
    let bit_identical = reference
        .data()
        .iter()
        .zip(batched.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "batched path diverged from sequential");

    eprintln!("measuring sequential path ({n_samples} samples, {reps} reps)...");
    let seq = measure(&hw, n_samples, reps, || {
        let _ = hw.forward(&x).expect("forward");
    });

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        eprintln!("measuring batched path with {threads} thread(s)...");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let m = pool.install(|| {
            measure(&hw, n_samples, reps, || {
                let _ = hw.forward_batch(&x).expect("forward_batch");
            })
        });
        rows.push((threads, m));
    }
    let one_thread_sps = rows
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|(_, m)| m.samples_per_sec)
        .unwrap_or(seq.samples_per_sec);

    // Single-thread block-size sweep: isolates the cache-blocked
    // kernel's gains from thread scaling (block size never changes
    // bits, only how many samples share one pass over the tile data).
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("thread pool");
    let mut blocked_rows = Vec::new();
    for block in [1usize, 8, 32] {
        eprintln!("measuring blocked kernel at block={block} (1 thread)...");
        let ropts = RunOptions::planned().with_block_size(block);
        let m = single.install(|| {
            measure(&hw, n_samples, reps, || {
                let _ = hw.run(&x, &ropts).expect("blocked run");
            })
        });
        blocked_rows.push((block, m));
    }

    // Single-thread backend sweep: every pluggable kernel backend runs
    // the same measured batch at block 32, checked against the
    // sequential reference before timing. Exact backends (scalar,
    // vector_f32) must match bit for bit; the fixed-point backend's
    // deviation is reported and sanity-capped at 10% of full scale.
    let full_scale = reference
        .data()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-6);
    let mut backend_rows = Vec::new();
    let mut scalar_backend_sps = f64::NAN;
    for backend in Backend::all() {
        eprintln!(
            "measuring backend {} at block=32 (1 thread)...",
            backend.name()
        );
        let ropts = RunOptions::planned()
            .with_block_size(32)
            .with_backend(backend);
        let out = hw.run(&x, &ropts).expect("backend run").outputs;
        let exact = out
            .data()
            .iter()
            .zip(reference.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let max_abs_dev = out
            .data()
            .iter()
            .zip(reference.data())
            .fold(0.0f64, |m, (a, b)| m.max(f64::from((a - b).abs())));
        if backend.is_exact() {
            assert!(
                exact,
                "exact backend {} diverged from the sequential reference",
                backend.name()
            );
        } else {
            assert!(
                max_abs_dev.is_finite() && max_abs_dev <= 0.1 * f64::from(full_scale),
                "backend {} deviation {max_abs_dev:e} exceeds 10% of full scale",
                backend.name()
            );
        }
        let m = single.install(|| {
            measure(&hw, n_samples, reps, || {
                let _ = hw.run(&x, &ropts).expect("backend run");
            })
        });
        if backend == Backend::Scalar {
            scalar_backend_sps = m.samples_per_sec;
        }
        backend_rows.push((backend, m, exact, max_abs_dev));
    }

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", hw.name()));
    json.push_str(&format!("  \"samples\": {n_samples},\n"));
    json.push_str(&format!(
        "  \"mvms_per_sample\": {},\n",
        hw.dense_mvms_per_sample()
    ));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str(&format!(
        "  \"compile_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        cache.hits(),
        cache.misses()
    ));
    json.push_str(&format!(
        "  \"sequential\": {{\"elapsed_s\": {}, \"samples_per_sec\": {}, \"mvms_per_sec\": {}}},\n",
        json_num(seq.elapsed_s),
        json_num(seq.samples_per_sec),
        json_num(seq.mvms_per_sec)
    ));
    json.push_str("  \"blocked\": [\n");
    for (i, (block, m)) in blocked_rows.iter().enumerate() {
        let comma = if i + 1 < blocked_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"block\": {block}, \"threads\": 1, \"elapsed_s\": {}, \
             \"samples_per_sec\": {}, \"speedup_vs_sequential\": {}}}{comma}\n",
            json_num(m.elapsed_s),
            json_num(m.samples_per_sec),
            json_num(m.samples_per_sec / seq.samples_per_sec)
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"backends\": [\n");
    for (i, (backend, m, exact, max_abs_dev)) in backend_rows.iter().enumerate() {
        let comma = if i + 1 < backend_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"block\": 32, \"threads\": 1, \"elapsed_s\": {}, \
             \"samples_per_sec\": {}, \"speedup_vs_scalar\": {}, \"exact\": {exact}, \
             \"max_abs_dev\": {max_abs_dev:e}}}{comma}\n",
            backend.name(),
            json_num(m.elapsed_s),
            json_num(m.samples_per_sec),
            json_num(m.samples_per_sec / scalar_backend_sps)
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"batched\": [\n");
    for (i, (threads, m)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"elapsed_s\": {}, \"samples_per_sec\": {}, \
             \"mvms_per_sec\": {}, \"speedup_vs_sequential\": {}, \
             \"speedup_vs_one_thread\": {}}}{comma}\n",
            json_num(m.elapsed_s),
            json_num(m.samples_per_sec),
            json_num(m.mvms_per_sec),
            json_num(m.samples_per_sec / seq.samples_per_sec),
            json_num(m.samples_per_sec / one_thread_sps)
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    println!(
        "sequential: {:>8.1} samples/s  {:>12.0} MVMs/s",
        seq.samples_per_sec, seq.mvms_per_sec
    );
    for (block, m) in &blocked_rows {
        println!(
            "blocked B={block:<3} x1: {:>7.1} samples/s  ({:.2}x vs sequential)",
            m.samples_per_sec,
            m.samples_per_sec / seq.samples_per_sec
        );
    }
    for (backend, m, exact, max_abs_dev) in &backend_rows {
        println!(
            "backend {:<10} x1: {:>7.1} samples/s  ({:.2}x vs scalar, exact={exact}, \
             max_abs_dev={max_abs_dev:.2e})",
            backend.name(),
            m.samples_per_sec,
            m.samples_per_sec / scalar_backend_sps
        );
    }
    for (threads, m) in &rows {
        println!(
            "batched x{threads}: {:>7.1} samples/s  {:>12.0} MVMs/s  ({:.2}x seq, {:.2}x one-thread)",
            m.samples_per_sec,
            m.mvms_per_sec,
            m.samples_per_sec / seq.samples_per_sec,
            m.samples_per_sec / one_thread_sps
        );
    }

    if args.has("gate") {
        let fail = |why: &str| -> ! {
            eprintln!("perf gate FAILED: {why}");
            std::process::exit(1);
        };
        if !bit_identical {
            fail("batched path lost bit identity");
        }
        if host_parallelism >= 4 {
            let four = rows
                .iter()
                .find(|(t, _)| *t == 4)
                .map(|(_, m)| m.samples_per_sec)
                .unwrap_or_else(|| fail("no 4-thread measurement"));
            let scaling = four / one_thread_sps;
            if scaling < 2.0 {
                fail(&format!(
                    "4-thread speedup vs 1 thread is {scaling:.2}x (< 2x) \
                     on a {host_parallelism}-CPU host"
                ));
            }
            eprintln!("perf gate passed: 4-thread scaling {scaling:.2}x, bit_identical");
        } else {
            // Thread scaling is unobservable without cores to scale
            // onto; gate the single-thread kernel speedup instead.
            let amortized = one_thread_sps / seq.samples_per_sec;
            if amortized < 2.0 {
                fail(&format!(
                    "1-thread batched speedup vs sequential is {amortized:.2}x (< 2x) \
                     on a {host_parallelism}-CPU host"
                ));
            }
            eprintln!(
                "perf gate passed: {host_parallelism}-CPU host, \
                 1-thread batched {amortized:.2}x vs sequential, bit_identical"
            );
        }
    }
}
