//! Serving throughput: batched micro-batching server vs. a sequential
//! single-connection client (`BENCH_serve.json` at the repo root).
//!
//! The load generator runs two scenarios against the **same** compiled
//! MLP-1 served over loopback TCP:
//!
//! - **sequential** — one client, one request at a time: every request
//!   pays the full per-plan execution alone (batch size 1).
//! - **batched** — many concurrent client threads: the server's
//!   micro-batcher coalesces strangers' requests into one amortized
//!   `Planned` execution, so the per-sample cost drops while outputs
//!   stay bit-identical.
//!
//! Before measuring, every served output is checked **byte-equal** to a
//! local per-sample `forward` oracle, and the report records that no
//! request was lost or duplicated (`accepted == completed`, zero
//! rejects/expiries during measurement runs).
//!
//! A **many-connection overload** scenario then opens hundreds of
//! simultaneous connections — far more than the server's fixed budget
//! of event-loop threads — fires paced traffic over all of them at
//! once, and records p99 latency under that overload. The gate is
//! structural, not timing-based (CI hosts vary): every connection
//! served bit-identically to the oracle, zero lost or duplicated
//! replies, and the `conns_peak` counter proving the connections were
//! truly simultaneous on the small thread budget.
//!
//! A third scenario ages the served network **mid-load** and lets the
//! attached background scrubber hot-repair it: the gate is 100 %
//! availability — zero busy rejects, zero expiries, every request
//! answered — while the `STATS` verb reports the repairs and epoch
//! swaps that happened underneath the traffic.
//!
//! A fourth scenario exercises the **model registry**: two different
//! MLP-1 instances served simultaneously, two replicas each, with one
//! replica of the loaded model drained mid-traffic — the gate is again
//! zero rejects, with per-model p99 latency and per-replica load
//! recorded in the report. A hand-rolled byte-level v1 client (exactly
//! what a binary compiled before protocol v2 would send) is also
//! checked bit-identical against the oracle.
//!
//! ```text
//! cargo run --release --bin serve_bench              # full measurement
//! cargo run --release --bin serve_bench -- --smoke   # CI-sized
//! cargo run --release --bin serve_bench -- --clients 8 --requests 200
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use resipe::inference::{CompileOptions, HardwareNetwork};
use resipe::repair::RepairPolicy;
use resipe::scrub::ScrubConfig;
use resipe_analog::units::Seconds;
use resipe_bench::Args;
use resipe_nn::data::synth_digits;
use resipe_nn::models;
use resipe_nn::tensor::Tensor;
use resipe_nn::train::{Sgd, TrainConfig};
use resipe_reram::aging::{AgingClock, AgingConfig};
use resipe_reram::faults::RetentionDrift;
use resipe_serve::{Client, ModelSpec, ReplicaHealth, Server, ServerConfig};

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

/// One measured scenario: wall-clock for `total` requests and the
/// server-side batching shape over that window.
struct Scenario {
    elapsed_s: f64,
    requests_per_sec: f64,
    mean_batch: f64,
    largest_batch: u64,
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let n_train = args.usize_of("train", if smoke { 200 } else { 600 });
    let epochs = args.usize_of("epochs", if smoke { 2 } else { 6 });
    let clients = args.usize_of("clients", if smoke { 4 } else { 6 }).max(1);
    let per_client = args
        .usize_of("requests", if smoke { 24 } else { 120 })
        .max(1);
    let max_batch = args.usize_of("max-batch", 32).max(1);
    let max_wait_us = args.usize_of("max-wait-us", 300) as u64;
    let mc_conns = args.usize_of("conns", 256).max(1);
    let mc_per_conn = args.usize_of("conn-requests", 2).max(1);
    let event_threads = args.usize_of("event-threads", 2).max(1);
    let out_path = args
        .value_of("out")
        .unwrap_or("BENCH_serve.json")
        .to_owned();

    eprintln!("training MLP-1 on {n_train} synthetic digits ({epochs} epochs)...");
    let train = synth_digits(n_train, 1).expect("dataset");
    let mut net = models::mlp1(7).expect("model");
    Sgd::new(TrainConfig::new(epochs).with_learning_rate(0.1))
        .fit(&mut net, &train)
        .expect("training");
    let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).expect("calib");
    let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).expect("compile");
    let oracle = hw.clone();

    // A second, genuinely different MLP-1 (distinct init seed → distinct
    // weights) for the multi-model scenario; registered lazily so its
    // compile cost lands on first request, through the shared cache.
    let mut net2 = models::mlp1(13).expect("model 2");
    Sgd::new(TrainConfig::new(epochs.min(2)).with_learning_rate(0.1))
        .fit(&mut net2, &train)
        .expect("training 2");
    let oracle2 = HardwareNetwork::compile(&net2, &calib, &CompileOptions::paper())
        .expect("compile oracle 2");

    let sample_shape = train.sample_shape().to_vec();
    let width: usize = sample_shape.iter().product();
    let total = clients * per_client;
    let indices: Vec<usize> = (0..total).map(|i| i % train.len()).collect();
    let (corpus, _) = train.batch(&indices).expect("corpus");

    // BIST threshold sharp enough to see retention drift (0.05 swings);
    // on the healthy network of scenarios 1–2 every scrub pass is quiet,
    // so the measured scenarios and the oracle check are unaffected.
    let mut scrub_policy = RepairPolicy::full();
    scrub_policy.bist.cell_threshold = 0.05;
    let scrub = ScrubConfig::new()
        .with_policy(scrub_policy)
        .with_interval(Duration::from_millis(5))
        .with_seed(7);
    let server = Server::builder()
        .config(
            ServerConfig::default()
                .with_max_batch(max_batch)
                .with_max_wait(Duration::from_micros(max_wait_us))
                // Big enough that neither the batched scenarios nor
                // one outstanding request per overload connection can
                // hit admission control.
                .with_queue_capacity((2 * total).max(2 * mc_conns).max(64))
                .with_event_threads(event_threads)
                .with_max_connections((2 * mc_conns).max(1024)),
        )
        .register_model(
            "mlp1",
            ModelSpec::compiled(hw, &sample_shape).with_scrub(scrub),
        )
        .replicas(2)
        .register_model(
            "mlp2",
            ModelSpec::network(net2, calib.clone(), CompileOptions::paper(), &sample_shape),
        )
        .replicas(2)
        .default_model("mlp1")
        .bind("127.0.0.1:0")
        .expect("server bind");
    let addr = server.local_addr();

    // ---- Correctness gate: served outputs byte-equal the local oracle.
    eprintln!("verifying served outputs against the per-sample oracle...");
    let reference = oracle.forward(&corpus).expect("oracle forward");
    let out_width = reference.len() / total;
    let verify_n = total.min(if smoke { 32 } else { 64 });
    let mut bit_identical = true;
    {
        let mut client = Client::connect(addr).expect("verify client");
        for idx in 0..verify_n {
            let sample = Tensor::from_vec(
                corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                &sample_shape,
            )
            .expect("sample");
            let served = client.infer(&sample).expect("served infer");
            let expected = &reference.data()[idx * out_width..(idx + 1) * out_width];
            bit_identical &= served
                .data()
                .iter()
                .zip(expected)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        }
    }
    assert!(bit_identical, "served outputs diverged from the oracle");

    // ---- v1 wire compatibility: hand-rolled legacy frames (exactly
    // what a pre-registry binary emits) against the v2 server. Checked
    // on the pristine network, before the aging scenario mutates it
    // (hot repair restores function, not the exact conductance bits).
    eprintln!("checking hand-rolled v1 frames against the oracle...");
    let v1_n = 8usize.min(total);
    let v1_compat = {
        let mut stream = TcpStream::connect(addr).expect("raw v1 connect");
        let mut ok = true;
        for idx in 0..v1_n {
            let mut payload = vec![1u8]; // verb Infer
            payload.extend_from_slice(&((idx + 1) as u64).to_le_bytes());
            payload.extend_from_slice(&0u32.to_le_bytes());
            payload.push(sample_shape.len() as u8);
            for &d in &sample_shape {
                payload.extend_from_slice(&(d as u32).to_le_bytes());
            }
            for &v in &corpus.data()[idx * width..(idx + 1) * width] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&payload);
            stream.write_all(&frame).expect("raw v1 write");

            let mut len = [0u8; 4];
            stream.read_exact(&mut len).expect("raw v1 len");
            let mut resp = vec![0u8; u32::from_le_bytes(len) as usize];
            stream.read_exact(&mut resp).expect("raw v1 body");
            ok &= resp[0] == 0; // status Ok, legacy framing (no preamble)
            let ndim = resp[9] as usize;
            let data_at = 10 + 4 * ndim;
            let served: Vec<f32> = resp[data_at..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let expected = &reference.data()[idx * out_width..(idx + 1) * out_width];
            ok &= served.len() == expected.len()
                && served
                    .iter()
                    .zip(expected)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
        }
        ok
    };
    assert!(v1_compat, "legacy v1 bytes no longer bit-identical");

    let baseline = server.stats();

    // ---- Scenario 1: sequential single-connection client.
    eprintln!("measuring sequential single-connection client ({total} requests)...");
    let seq = {
        let mut client = Client::connect(addr).expect("sequential client");
        let start = Instant::now();
        for idx in 0..total {
            let sample = Tensor::from_vec(
                corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                &sample_shape,
            )
            .expect("sample");
            let _ = client.infer(&sample).expect("sequential infer");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let after = server.stats();
        let batches = after.batches - baseline.batches;
        let samples = after.batched_samples - baseline.batched_samples;
        Scenario {
            elapsed_s: elapsed,
            requests_per_sec: total as f64 / elapsed,
            mean_batch: if batches == 0 {
                0.0
            } else {
                samples as f64 / batches as f64
            },
            largest_batch: after.largest_batch,
        }
    };

    let mid = server.stats();

    // ---- Scenario 2: concurrent clients, micro-batched by the server.
    eprintln!("measuring {clients} concurrent clients x {per_client} requests...");
    let bat = {
        let start = Instant::now();
        let mut joins = Vec::new();
        for c in 0..clients {
            let corpus = corpus.clone();
            let sample_shape = sample_shape.clone();
            joins.push(thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client");
                for r in 0..per_client {
                    let idx = c * per_client + r;
                    let sample = Tensor::from_vec(
                        corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                        &sample_shape,
                    )
                    .expect("sample");
                    let _ = client.infer(&sample).expect("batched infer");
                }
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let after = server.stats();
        let batches = after.batches - mid.batches;
        let samples = after.batched_samples - mid.batched_samples;
        Scenario {
            elapsed_s: elapsed,
            requests_per_sec: total as f64 / elapsed,
            mean_batch: if batches == 0 {
                0.0
            } else {
                samples as f64 / batches as f64
            },
            largest_batch: after.largest_batch,
        }
    };

    // ---- Many-connection overload: mc_conns simultaneous connections
    // on the server's fixed event-thread budget, all firing at once
    // through a barrier. Runs on the still-pristine network (before the
    // aging scenario) so every reply checks bit-identical to the
    // oracle. Gates are structural: zero lost/duplicated replies and a
    // conns_peak proving true simultaneity.
    eprintln!(
        "measuring {mc_conns} simultaneous connections x {mc_per_conn} requests \
         on {event_threads} event threads..."
    );
    let before_mc = server.stats();
    let mc_total = mc_conns * mc_per_conn;
    let (mc_elapsed, mc_latencies, mc_replies, mc_mismatches) = {
        let start_barrier = std::sync::Arc::new(std::sync::Barrier::new(mc_conns));
        let done_barrier = std::sync::Arc::new(std::sync::Barrier::new(mc_conns));
        let mut joins = Vec::new();
        let start = Instant::now();
        for c in 0..mc_conns {
            let corpus = corpus.clone();
            let sample_shape = sample_shape.clone();
            let reference = reference.clone();
            let start_barrier = std::sync::Arc::clone(&start_barrier);
            let done_barrier = std::sync::Arc::clone(&done_barrier);
            joins.push(thread::spawn(move || {
                let mut client = Client::connect(addr).expect("overload client");
                let mut latencies = Vec::with_capacity(mc_per_conn);
                let mut replies = 0u64;
                let mut mismatches = 0u64;
                // Everyone connects first, then fires together.
                start_barrier.wait();
                for r in 0..mc_per_conn {
                    let idx = (c * mc_per_conn + r) % total;
                    let sample = Tensor::from_vec(
                        corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                        &sample_shape,
                    )
                    .expect("sample");
                    let t0 = Instant::now();
                    let served = client.infer(&sample).expect("overload infer");
                    latencies.push(t0.elapsed().as_nanos() as u64);
                    replies += 1;
                    let out_width = reference.len() / total;
                    let expected = &reference.data()[idx * out_width..(idx + 1) * out_width];
                    if !(served.data().len() == expected.len()
                        && served
                            .data()
                            .iter()
                            .zip(expected)
                            .all(|(a, b)| a.to_bits() == b.to_bits()))
                    {
                        mismatches += 1;
                    }
                }
                // Hold the connection until everyone finished, so the
                // peak counter records all of them simultaneously open.
                done_barrier.wait();
                (latencies, replies, mismatches)
            }));
        }
        let mut latencies = Vec::with_capacity(mc_total);
        let mut replies = 0u64;
        let mut mismatches = 0u64;
        for j in joins {
            let (l, r, m) = j.join().expect("overload client thread");
            latencies.extend(l);
            replies += r;
            mismatches += m;
        }
        (
            start.elapsed().as_secs_f64(),
            latencies,
            replies,
            mismatches,
        )
    };
    let after_mc = server.stats();
    let mc_completed = after_mc.completed - before_mc.completed;
    let mc_lost = (mc_total as u64).saturating_sub(mc_completed.min(mc_replies));
    let mc_duplicated = mc_replies.saturating_sub(mc_total as u64);
    let mc_peak = after_mc.conns_peak;
    let (mc_p50, mc_p99) = {
        let mut sorted = mc_latencies.clone();
        sorted.sort_unstable();
        let pick = |q: f64| {
            sorted
                .get(((sorted.len() as f64 * q) as usize).min(sorted.len().saturating_sub(1)))
                .copied()
                .unwrap_or(0)
        };
        (pick(0.50), pick(0.99))
    };
    assert_eq!(
        mc_mismatches, 0,
        "overload replies diverged from the oracle"
    );
    assert_eq!(mc_lost, 0, "overload lost replies");
    assert_eq!(mc_duplicated, 0, "overload duplicated replies");
    assert!(
        mc_peak >= mc_conns as u64,
        "conns_peak {mc_peak} never saw all {mc_conns} connections simultaneously"
    );
    assert_eq!(
        after_mc.conns_evicted_slow, 0,
        "healthy overload clients must not be evicted"
    );

    // ---- Scenario 3: hot repair under load. Age the served network
    // mid-traffic; the background scrubber must detect, repair, and
    // epoch-swap without a single request being rejected or lost.
    eprintln!("measuring mid-load hot repair ({clients} clients x {per_client} requests)...");
    let before_repair = server.stats();
    {
        let mut joins = Vec::new();
        for c in 0..clients {
            let corpus = corpus.clone();
            let sample_shape = sample_shape.clone();
            joins.push(thread::spawn(move || {
                let mut client = Client::connect(addr).expect("repair client");
                for r in 0..per_client {
                    let idx = c * per_client + r;
                    let sample = Tensor::from_vec(
                        corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                        &sample_shape,
                    )
                    .expect("sample");
                    let _ = client.infer(&sample).expect("infer during repair");
                    // Pace the load so it spans the aging and at least
                    // one background scrub pass.
                    thread::sleep(Duration::from_micros(500));
                }
            }));
        }
        thread::sleep(Duration::from_millis(5));
        let drift = RetentionDrift::new(Seconds(1e6)).expect("drift model");
        let aging = AgingConfig::new(Seconds(100.0), drift)
            .expect("aging config")
            .with_seed(0xa9e);
        let network = server.network().expect("served network");
        if let Some(step) = AgingClock::new(aging).advance(20_000) {
            network.age(&step).expect("age served network");
        }
        for j in joins {
            j.join().expect("repair client thread");
        }
        // Grace window: the scrubber runs on its own cadence.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().scrub_repairs == before_repair.scrub_repairs
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(5));
        }
    }
    let repair_stats = server.stats();
    let repairs_under_load = repair_stats.scrub_repairs - before_repair.scrub_repairs;
    let swaps_under_load = repair_stats.plan_swaps - before_repair.plan_swaps;
    assert!(
        repairs_under_load > 0,
        "scrubber never repaired the aged network under load"
    );
    assert!(
        swaps_under_load >= 2,
        "expected the aging publish plus at least one repair swap, saw {swaps_under_load}"
    );

    // ---- Scenario 4: the model registry under load. Two models, two
    // replicas each, concurrent per-model clients, and one replica of
    // the hot model drained mid-traffic. The gate: zero rejects, every
    // request answered, both models' outputs bit-identical to their own
    // oracles (spot-checked), and per-replica load visible in STATS.
    let s4_clients = clients.max(2);
    eprintln!("measuring multi-model registry load ({s4_clients} clients across 2 models)...");
    let reference2 = oracle2.forward(&corpus).expect("oracle 2 forward");
    {
        // Warm mlp2: its first request pays the lazy compile.
        let mut warm = Client::connect(addr).expect("warm client");
        let sample =
            Tensor::from_vec(corpus.data()[..width].to_vec(), &sample_shape).expect("sample");
        let served = warm.model("mlp2").infer(&sample).expect("mlp2 warmup");
        assert!(
            served
                .data()
                .iter()
                .zip(&reference2.data()[..reference2.len() / total])
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "mlp2 served output diverged from its oracle"
        );
    }
    let before_multi = server.stats();
    let (multi_elapsed, s4_total) = {
        let start = Instant::now();
        let mut joins = Vec::new();
        for c in 0..s4_clients {
            let corpus = corpus.clone();
            let sample_shape = sample_shape.clone();
            let model = if c % 2 == 0 { "mlp1" } else { "mlp2" };
            joins.push(thread::spawn(move || {
                let mut client = Client::connect(addr).expect("registry client");
                for r in 0..per_client {
                    let idx = (c * per_client + r) % total;
                    let sample = Tensor::from_vec(
                        corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                        &sample_shape,
                    )
                    .expect("sample");
                    let _ = client.model(model).infer(&sample).expect("registry infer");
                }
            }));
        }
        // Mid-load: drain replica 0 of the default model. Traffic must
        // keep flowing to replica 1 with zero rejects.
        thread::sleep(Duration::from_millis(5));
        server
            .set_replica_health("mlp1", 0, ReplicaHealth::Draining)
            .expect("drain replica");
        for j in joins {
            j.join().expect("registry client thread");
        }
        (start.elapsed().as_secs_f64(), s4_clients * per_client)
    };
    let multi_stats = server.stats();
    let multi_rejects = multi_stats.rejected_busy - before_multi.rejected_busy;
    assert_eq!(
        multi_rejects, 0,
        "draining a replica mid-load must not reject traffic"
    );
    assert!(multi_stats.models.len() >= 2, "registry lost a model");
    for block in &multi_stats.models {
        assert!(
            block.replicas.len() >= 2,
            "model '{}' should report >= 2 replicas",
            block.name
        );
        let replica_completed: u64 = block.replicas.iter().map(|r| r.completed).sum();
        assert_eq!(
            replica_completed, block.completed,
            "model '{}': per-replica completions must sum to the model total",
            block.name
        );
    }
    let drained = multi_stats
        .model("mlp1")
        .and_then(|b| b.replicas.first())
        .map(|r| r.health_name())
        .unwrap_or("unknown");
    assert_eq!(drained, "draining", "replica 0 should report its drain");
    server
        .set_replica_health("mlp1", 0, ReplicaHealth::Healthy)
        .expect("restore replica");

    let stats = server.stats();
    let expected_total = (verify_n + 3 * total + 1 + s4_total + v1_n + mc_total) as u64;
    let lossless = stats.accepted == expected_total
        && stats.completed == expected_total
        && stats.rejected_busy == 0
        && stats.expired == 0
        && stats.shutdown_rejects == 0
        && stats.engine_errors == 0;
    assert!(
        lossless,
        "request accounting broke: {} accepted, {} completed of {expected_total} \
         ({} busy, {} expired)",
        stats.accepted, stats.completed, stats.rejected_busy, stats.expired
    );

    let speedup = bat.requests_per_sec / seq.requests_per_sec;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"model\": \"MLP-1\",\n");
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {per_client},\n"));
    json.push_str(&format!("  \"total_requests\": {total},\n"));
    json.push_str(&format!("  \"max_batch\": {max_batch},\n"));
    json.push_str(&format!("  \"max_wait_us\": {max_wait_us},\n"));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str(&format!("  \"lossless\": {lossless},\n"));
    json.push_str(&format!(
        "  \"sequential\": {{\"elapsed_s\": {}, \"requests_per_sec\": {}, \
         \"mean_batch\": {}, \"largest_batch\": {}}},\n",
        json_num(seq.elapsed_s),
        json_num(seq.requests_per_sec),
        json_num(seq.mean_batch),
        seq.largest_batch
    ));
    json.push_str(&format!(
        "  \"batched\": {{\"elapsed_s\": {}, \"requests_per_sec\": {}, \
         \"mean_batch\": {}, \"largest_batch\": {}}},\n",
        json_num(bat.elapsed_s),
        json_num(bat.requests_per_sec),
        json_num(bat.mean_batch),
        bat.largest_batch
    ));
    json.push_str(&format!("  \"speedup\": {},\n", json_num(speedup)));
    json.push_str(&format!("  \"v1_compat\": {v1_compat},\n"));
    json.push_str(&format!(
        "  \"many_connections\": {{\"connections\": {mc_conns}, \
         \"requests_per_connection\": {mc_per_conn}, \"requests\": {mc_total}, \
         \"event_threads\": {event_threads}, \"elapsed_s\": {}, \
         \"requests_per_sec\": {}, \"p50_nanos\": {mc_p50}, \"p99_nanos\": {mc_p99}, \
         \"conns_peak\": {mc_peak}, \"lost\": {mc_lost}, \"duplicated\": {mc_duplicated}, \
         \"evicted_slow\": {}}},\n",
        json_num(mc_elapsed),
        json_num(mc_total as f64 / mc_elapsed),
        after_mc.conns_evicted_slow,
    ));
    json.push_str(&format!(
        "  \"multi_model\": {{\"models\": {}, \"requests\": {s4_total}, \"elapsed_s\": {}, \
         \"requests_per_sec\": {}, \"rejected_busy\": {multi_rejects}, \
         \"drained_replica\": \"mlp1/0\"}},\n",
        stats.models.len(),
        json_num(multi_elapsed),
        json_num(s4_total as f64 / multi_elapsed),
    ));
    json.push_str("  \"models\": [\n");
    for (i, block) in stats.models.iter().enumerate() {
        let replicas: Vec<String> = block
            .replicas
            .iter()
            .map(|r| {
                format!(
                    "{{\"index\": {}, \"health\": \"{}\", \"completed\": {}, \"batches\": {}}}",
                    r.index,
                    r.health_name(),
                    r.completed,
                    r.batches
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"accepted\": {}, \"completed\": {}, \
             \"rejected_busy\": {}, \"mean_batch\": {}, \"p50_nanos\": {}, \
             \"p99_nanos\": {}, \"replicas\": [{}]}}{}\n",
            block.name,
            block.accepted,
            block.completed,
            block.rejected_busy,
            json_num(block.mean_batch_size()),
            block.latency.p50_nanos,
            block.latency.p99_nanos,
            replicas.join(", "),
            if i + 1 == stats.models.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"hot_repair\": {{\"requests\": {total}, \"scrub_repairs\": {repairs_under_load}, \
         \"plan_swaps\": {swaps_under_load}, \"rejected_busy\": {}, \"expired\": {}}},\n",
        stats.rejected_busy - before_repair.rejected_busy,
        stats.expired - before_repair.expired
    ));
    json.push_str(&format!(
        "  \"latency\": {{\"count\": {}, \"p50_nanos\": {}, \"p95_nanos\": {}, \
         \"p99_nanos\": {}, \"max_nanos\": {}}},\n",
        stats.latency.count,
        stats.latency.p50_nanos,
        stats.latency.p95_nanos,
        stats.latency.p99_nanos,
        stats.latency.max_nanos
    ));
    json.push_str(&format!(
        "  \"server\": {{\"accepted\": {}, \"completed\": {}, \"rejected_busy\": {}, \
         \"expired\": {}, \"engine_errors\": {}, \"batches\": {}, \"batched_samples\": {}, \
         \"scrub_passes\": {}, \"scrub_tiles\": {}, \"scrub_repairs\": {}, \"plan_swaps\": {}}}\n",
        stats.accepted,
        stats.completed,
        stats.rejected_busy,
        stats.expired,
        stats.engine_errors,
        stats.batches,
        stats.batched_samples,
        stats.scrub_passes,
        stats.scrub_tiles,
        stats.scrub_repairs,
        stats.plan_swaps
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    println!(
        "sequential: {:>8.1} req/s  (mean batch {:.2})",
        seq.requests_per_sec, seq.mean_batch
    );
    println!(
        "batched   : {:>8.1} req/s  (mean batch {:.2}, largest {})  {:.2}x",
        bat.requests_per_sec, bat.mean_batch, bat.largest_batch, speedup
    );
    println!(
        "hot repair: {total} requests answered, {repairs_under_load} repairs, \
         {swaps_under_load} epoch swaps, 0 rejects"
    );
    println!(
        "registry  : {} models x 2 replicas, {s4_total} requests, replica drained mid-load, \
         0 rejects, v1 bytes bit-identical",
        stats.models.len()
    );
    println!(
        "overload  : {mc_conns} simultaneous conns on {event_threads} event threads, \
         {mc_total} requests, p99 {:.2} ms, 0 lost, 0 duplicated",
        mc_p99 as f64 / 1e6
    );
}
