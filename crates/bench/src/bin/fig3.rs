//! Regenerates **Fig. 3** of the ReSiPE paper: the transient waveforms of
//! the single-spiking MAC circuit — (a) the S1 ramp and sample-and-hold
//! activity, (b) the computation-stage `V(C_cog)` charging and the S2
//! comparator crossing that forms the output spike.
//!
//! ```text
//! cargo run --release -p resipe-bench --bin fig3 [--csv] [--step-ps N]
//! ```
//!
//! Default output is a coarse ASCII rendering plus the extracted event
//! times; `--csv` dumps the full waveforms for external plotting.

use resipe::circuit::AnalogMac;
use resipe::config::ResipeConfig;
use resipe::engine::ResipeEngine;
use resipe_analog::units::{Seconds, Siemens};
use resipe_bench::Args;

fn main() {
    let args = Args::from_env();
    let step = Seconds(args.f64_of("step-ps", 20.0) * 1e-12);

    // The paper's Fig. 3 setup: a 2-input MAC with the published circuit
    // parameters (slice = 100 ns, Δt = 1 ns at 99–100 ns).
    let cfg = ResipeConfig::paper();
    let g = [Siemens(100e-6), Siemens(50e-6)];
    let t_in = [Seconds(30e-9), Seconds(60e-9)];

    let analog = AnalogMac::new(cfg, &g)
        .expect("valid circuit")
        .run(&t_in, step)
        .expect("transient converges");
    let engine = ResipeEngine::new(cfg).mac(&t_in, &g).expect("valid MAC");

    println!("Fig. 3 — single-spiking MAC transient (2 inputs)");
    println!(
        "inputs: t_in1 = {:.1} ns (G1 = {:.0} uS), t_in2 = {:.1} ns (G2 = {:.0} uS)\n",
        t_in[0].as_nanos(),
        g[0].0 * 1e6,
        t_in[1].as_nanos(),
        g[1].0 * 1e6
    );

    if args.has("csv") {
        println!("time_ns,ramp_v,cog_v,held1_v,held2_v");
        for (i, &t) in analog.ramp.times().iter().enumerate() {
            // Thin the dump to ~1 ns resolution.
            if i % ((1e-9 / step.0) as usize).max(1) != 0 {
                continue;
            }
            println!(
                "{:.3},{:.6},{:.6},{:.6},{:.6}",
                t * 1e9,
                analog.ramp.values()[i],
                analog.cog.values()[i],
                analog.held[0].values()[i],
                analog.held[1].values()[i]
            );
        }
    } else {
        render_ascii("V(C_gd) ramp", analog.ramp.times(), analog.ramp.values());
        render_ascii("V(C_cog)", analog.cog.times(), analog.cog.values());
    }

    println!("\nExtracted events:");
    println!(
        "  S/H 1 captures at t_in1        : {:.2} ns",
        t_in[0].as_nanos()
    );
    println!(
        "  S/H 2 captures at t_in2        : {:.2} ns",
        t_in[1].as_nanos()
    );
    println!("  computation stage              : 99.00 - 100.00 ns");
    println!(
        "  V_out sampled on C_cog         : {:.4} V (closed-form: {:.4} V)",
        analog.v_out.0, engine.v_out.0
    );
    println!(
        "  output spike (from S2 start)   : {:.3} ns (closed-form: {:.3} ns)",
        analog.t_out.as_nanos(),
        engine.t_out.as_nanos()
    );
    println!(
        "  source energy over both slices : {:.3} pJ",
        analog.source_energy.as_pico()
    );
    let rel = (analog.t_out.0 - engine.t_out.0).abs() / engine.t_out.0.max(1e-12);
    println!(
        "  netlist vs closed-form t_out   : {:.2} % relative",
        rel * 100.0
    );
}

/// A coarse 64×16 ASCII plot of one waveform.
fn render_ascii(title: &str, times: &[f64], values: &[f64]) {
    const W: usize = 72;
    const H: usize = 12;
    let t_max = times.last().copied().unwrap_or(1.0);
    let v_max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut grid = vec![vec![' '; W]; H];
    for (&t, &v) in times.iter().zip(values) {
        let x = ((t / t_max) * (W - 1) as f64) as usize;
        let y = ((v / v_max) * (H - 1) as f64) as usize;
        grid[H - 1 - y][x] = '*';
    }
    println!("{title} (0..{:.0} ns, 0..{:.2} V)", t_max * 1e9, v_max);
    for row in grid {
        let line: String = row.into_iter().collect();
        println!("  |{line}|");
    }
}
