//! Regenerates **Fig. 5** of the ReSiPE paper: the input–output
//! characterization of the single-spiking MVM — `t_out` versus the input
//! strength `Σ t_in · G` for 100 random 32-cell columns with total
//! conductance 0.32–3.2 mS and spike times 10–80 ns, showing the
//! saturation of high-conductance columns below the ≤ 1.6 mS fit
//! ("Curve 1" vs. "Curve 2/3").
//!
//! ```text
//! cargo run --release -p resipe-bench --bin fig5 \
//!     [--samples N] [--csv] [--window-ablation]
//! ```
//!
//! `--window-ablation` adds the Sec. III-D resistance-window comparison
//! (10 kΩ–1 MΩ vs. the recommended 50 kΩ–1 MΩ).

use resipe::config::ResipeConfig;
use resipe::engine::ResipeEngine;
use resipe_analog::units::{Seconds, Siemens};
use resipe_bench::{fig5_samples, fit_slope, Args, Fig5Sample};

fn main() {
    let args = Args::from_env();
    let n = args.usize_of("samples", 100);
    let engine = ResipeEngine::new(ResipeConfig::paper());

    println!("Fig. 5 — t_out vs input strength (32-cell columns, paper parameters)\n");

    let samples = fig5_samples(
        n,
        32,
        (Siemens(0.32e-3), Siemens(3.2e-3)),
        (Seconds(10e-9), Seconds(80e-9)),
        2020,
    );

    let eval = |s: &Fig5Sample| -> (f64, f64, f64) {
        let mac = engine.mac(&s.t_in, &s.g).expect("valid sample");
        let sat = mac.saturated;
        let _ = sat;
        (s.strength, mac.t_out.as_nanos(), s.g_total.as_milli())
    };
    let points: Vec<(f64, f64, f64)> = samples.iter().map(eval).collect();

    if args.has("csv") {
        println!("strength_sS,t_out_ns,g_total_mS");
        for (x, y, g) in &points {
            println!("{x:.6e},{y:.4},{g:.3}");
        }
    } else {
        println!(
            "{:>16} {:>12} {:>12}",
            "strength (s*S)", "t_out (ns)", "G_total (mS)"
        );
        for (x, y, g) in &points {
            println!("{x:>16.4e} {y:>12.3} {g:>12.3}");
        }
    }

    // Group fits: Curve 1 (ΣG <= 1.6 mS) vs the saturated groups.
    let group = |lo: f64, hi: f64| -> Vec<(f64, f64)> {
        points
            .iter()
            .filter(|(_, _, g)| *g > lo && *g <= hi)
            .map(|(x, y, _)| (*x, *y))
            .collect()
    };
    let curve1 = group(0.0, 1.6);
    let curve2 = group(2.2, 2.8); // around 2.5 mS
    let curve3 = group(2.8, 3.2); // around 3.2 mS

    println!("\nFit slopes t_out / strength (ns per s*S):");
    for (name, pts) in [
        ("Curve 1 (G <= 1.6 mS)", &curve1),
        ("Curve 2 (G ~ 2.5 mS) ", &curve2),
        ("Curve 3 (G ~ 3.2 mS) ", &curve3),
    ] {
        match fit_slope(pts) {
            Some(k) => println!("  {name}: {k:.4e}  ({} pts)", pts.len()),
            None => println!("  {name}: (no samples)"),
        }
    }
    let k1 = fit_slope(&curve1);
    let k3 = fit_slope(&curve3);
    if let (Some(k1), Some(k3)) = (k1, k3) {
        println!(
            "\nSaturation check: Curve 3 sits {:.1}% below Curve 1 \
             (paper: high-G samples fall below the linear fit).",
            (1.0 - k3 / k1) * 100.0
        );
    }

    if args.has("window-ablation") {
        println!("\nResistance-window ablation (Sec. III-D):");
        println!(
            "{:>22} {:>14} {:>18}",
            "window", "max G (mS)", "rms nonlin (%)"
        );
        for (name, lrs) in [("10 kOhm - 1 MOhm", 10e3), ("50 kOhm - 1 MOhm", 50e3)] {
            let g_max_total = 32.0 / lrs * 1e3; // mS
                                                // Non-linearity: compare exact vs linear-scaled outputs over
                                                // samples drawn inside this window.
            let samples = fig5_samples(
                n,
                32,
                (Siemens(32.0 / 1e6), Siemens(32.0 / lrs)),
                (Seconds(10e-9), Seconds(80e-9)),
                77,
            );
            let mut num = 0.0;
            let mut den = 0.0;
            let mut pts = Vec::new();
            for s in &samples {
                let mac = engine.mac(&s.t_in, &s.g).expect("valid");
                pts.push((s.strength, mac.t_out.as_nanos()));
            }
            let k = fit_slope(&pts).unwrap_or(0.0);
            for (x, y) in &pts {
                let lin = k * x;
                num += (y - lin) * (y - lin);
                den += lin * lin;
            }
            let rms = (num / den.max(1e-30)).sqrt() * 100.0;
            println!("{name:>22} {g_max_total:>14.2} {rms:>18.2}");
        }
        println!(
            "\nThe tighter window keeps every column under the 1.6 mS linearity \
             bound, reducing the residual non-linearity."
        );
    }
}
