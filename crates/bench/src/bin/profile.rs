//! End-to-end telemetry profile: per-stage wall-clock and energy
//! attribution for the compile → run pipeline (`BENCH_profile.json` at
//! the repo root).
//!
//! Compiles MLP-1 twice through the [`CompileCache`] with an enabled
//! [`Telemetry`] recorder (one miss, one hit), runs a batch through the
//! unified `HardwareNetwork::run` API in planned mode, and reports the
//! full snapshot: span hierarchy, stage timings, counters, spike-time /
//! saturation histograms, and the per-stage energy attribution — which
//! must sum to the `HardwareNetwork::measured_energy` total within
//! 1 % (it is exact by construction; the assertion guards the
//! attribution against drifting from the MVM counter).
//!
//! ```text
//! cargo run --release --bin profile              # full measurement
//! cargo run --release --bin profile -- --smoke   # CI-sized
//! cargo run --release --bin profile -- --samples 256
//! ```

use resipe::cache::CompileCache;
use resipe::inference::{CompileOptions, FaultInjection, RunOptions};
use resipe::mapping::TileMapper;
use resipe::power::EnergyModel;
use resipe::telemetry::Telemetry;
use resipe_bench::Args;
use resipe_nn::data::synth_digits;
use resipe_nn::models;
use resipe_nn::train::{Sgd, TrainConfig};
use resipe_reram::variation::VariationModel;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let n_train = args.usize_of("train", if smoke { 200 } else { 600 });
    let epochs = args.usize_of("epochs", if smoke { 2 } else { 6 });
    let n_samples = args.usize_of("samples", if smoke { 32 } else { 128 });
    let out_path = args
        .value_of("out")
        .unwrap_or("BENCH_profile.json")
        .to_owned();

    eprintln!("training MLP-1 on {n_train} synthetic digits ({epochs} epochs)...");
    let train = synth_digits(n_train, 1).expect("dataset");
    let mut net = models::mlp1(7).expect("model");
    Sgd::new(TrainConfig::new(epochs).with_learning_rate(0.1))
        .fit(&mut net, &train)
        .expect("training");
    let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).expect("calib");

    // Compile with the full non-ideality chain so the repair, remap and
    // offset-reject counters have something to report, through the LRU
    // cache so the hit/miss counters exercise too.
    let telemetry = Telemetry::enabled();
    let opts = CompileOptions::paper()
        .with_mapper(TileMapper::paper().with_spare_cols(2))
        .with_variation(VariationModel::device_to_device(0.10).expect("variation"))
        .with_seed(7)
        .with_faults(FaultInjection::clustered(0.005, 4, 11))
        .with_repair(resipe::repair::RepairPolicy::full())
        .with_comparator_sigma(0.005)
        .build()
        .expect("options validate");
    let mut cache = CompileCache::new(4).with_telemetry(telemetry.clone());
    eprintln!("compiling {} (fresh, then cached)...", net.name());
    let hw = cache.get_or_compile(&net, &calib, &opts).expect("compile");
    drop(hw);
    let hw = cache.get_or_compile(&net, &calib, &opts).expect("cached");
    assert_eq!(cache.hits(), 1, "repeat compile must hit the cache");

    let indices: Vec<usize> = (0..n_samples).map(|i| i % train.len()).collect();
    let (x, _) = train.batch(&indices).expect("batch");

    // Profile both execution modes through the unified API; the planned
    // run must be bit-identical to the per-sample reference.
    eprintln!("running {n_samples} samples (per-sample, then planned)...");
    let seq = hw
        .run(&x, &RunOptions::per_sample())
        .expect("per-sample run");
    let planned = hw.run(&x, &RunOptions::planned()).expect("planned run");
    let bit_identical = seq
        .outputs
        .data()
        .iter()
        .zip(planned.outputs.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "planned run diverged from per-sample run");

    // The final snapshot covers the compiles and both runs.
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counters.mvms,
        hw.mvm_count(),
        "telemetry MVM counter must track the hardware counter exactly"
    );

    // Energy attribution: the per-stage split must sum to the measured
    // total within 1 % (exact up to float rounding, by construction).
    let model = EnergyModel::paper();
    let stage = snap.attributed_energy(&model);
    let attributed = stage.total().0;
    let measured = hw.measured_energy(&model).0;
    let rel_err = if measured > 0.0 {
        (attributed - measured).abs() / measured
    } else {
        0.0
    };
    assert!(
        rel_err <= 0.01,
        "stage energy attribution ({attributed:e} J) diverged from \
         measured total ({measured:e} J) by {:.3}%",
        rel_err * 100.0
    );

    let (s1_ns, xb_ns, s2_ns) = snap.stage_nanos();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", hw.name()));
    json.push_str(&format!("  \"samples\": {n_samples},\n"));
    json.push_str(&format!(
        "  \"mvms_per_sample\": {},\n",
        hw.dense_mvms_per_sample()
    ));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str(&format!(
        "  \"stage_nanos\": {{\"s1_encode\": {s1_ns}, \"crossbar\": {xb_ns}, \
         \"s2_decode\": {s2_ns}}},\n"
    ));
    json.push_str(&format!(
        "  \"energy\": {{\"s1_encode_j\": {}, \"crossbar_j\": {}, \"s2_decode_j\": {}, \
         \"attributed_total_j\": {}, \"measured_total_j\": {}, \"relative_error\": {}}},\n",
        json_num(stage.s1_encode.0),
        json_num(stage.crossbar.0),
        json_num(stage.s2_decode.0),
        json_num(attributed),
        json_num(measured),
        json_num(rel_err)
    ));
    json.push_str(&format!(
        "  \"saturation\": {{\"t_out_top_bin_fraction\": {}, \"v_out_top_bin_fraction\": {}}},\n",
        json_num(snap.t_out.saturation_fraction()),
        json_num(snap.v_out.saturation_fraction())
    ));
    // Cache-blocked kernel traffic: how many sample blocks the planned
    // run issued and how much tile conductance data they streamed.
    let kc = &snap.counters;
    let mean_block = if kc.kernel_blocks > 0 {
        kc.kernel_block_samples as f64 / kc.kernel_blocks as f64
    } else {
        0.0
    };
    json.push_str(&format!(
        "  \"kernel\": {{\"blocks\": {}, \"block_samples\": {}, \
         \"bytes_streamed\": {}, \"mean_samples_per_block\": {}}},\n",
        kc.kernel_blocks,
        kc.kernel_block_samples,
        kc.kernel_bytes_streamed,
        json_num(mean_block)
    ));
    // The full snapshot (counters, spans, layers, histograms), indented
    // into place.
    json.push_str("  \"telemetry\": ");
    json.push_str(&snap.to_json().replace('\n', "\n  "));
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_profile.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    let total_ns = (s1_ns + xb_ns + s2_ns).max(1) as f64;
    eprintln!(
        "stage wall-clock: s1_encode {:.1}%  crossbar {:.1}%  s2_decode {:.1}%",
        100.0 * s1_ns as f64 / total_ns,
        100.0 * xb_ns as f64 / total_ns,
        100.0 * s2_ns as f64 / total_ns
    );
    eprintln!(
        "energy: attributed {:.3e} J vs measured {:.3e} J (rel err {:.2e})",
        attributed, measured, rel_err
    );
    eprintln!(
        "counters: {} MVMs, {} zero-skips, {} spare remaps, {} repair pulses, \
         cache {}h/{}m",
        snap.counters.mvms,
        snap.counters.zero_activation_skips,
        snap.counters.spare_remaps,
        snap.counters.repair_pulses,
        snap.counters.compile_cache_hits,
        snap.counters.compile_cache_misses
    );
    eprintln!(
        "kernel: {} blocks / {} samples (mean {:.1}/block), {} tile bytes streamed",
        kc.kernel_blocks, kc.kernel_block_samples, mean_block, kc.kernel_bytes_streamed
    );
}
