//! Extension experiment: classification accuracy of the same trained
//! network under every data format — the functional side of Table I/II.
//!
//! The paper compares the formats on power/latency/area; this harness
//! adds the accuracy axis, running identical weights and test inputs
//! through the level-based, rate-coding, PWM, temporal-coding and ReSiPE
//! engines (the latter via the core compile path).
//!
//! ```text
//! cargo run --release -p resipe-bench --bin format_accuracy \
//!     [--train N] [--test N] [--epochs N]
//! ```

use resipe::inference::{CompileOptions, HardwareNetwork};
use resipe_baselines::{
    BaselineNetwork, LevelBased, PimEngine, PwmBased, RateCoding, TemporalCoding,
};
use resipe_bench::Args;
use resipe_nn::data::synth_digits;
use resipe_nn::metrics::accuracy;
use resipe_nn::models;
use resipe_nn::train::{Sgd, TrainConfig};

fn main() {
    let args = Args::from_env();
    let n_train = args.usize_of("train", 600);
    let n_test = args.usize_of("test", 150);
    let epochs = args.usize_of("epochs", 8);

    let train = synth_digits(n_train, 1).expect("dataset");
    let test = synth_digits(n_test, 2).expect("dataset");
    let mut net = models::mlp2(7).expect("builds");
    Sgd::new(
        TrainConfig::new(epochs)
            .with_learning_rate(0.08)
            .with_batch_size(32),
    )
    .fit(&mut net, &train)
    .expect("training converges");
    let ideal = accuracy(&mut net, &test).expect("ideal eval");
    println!(
        "MLP-2 on the synthetic digit task: ideal accuracy {:.1}%\n",
        ideal * 100.0
    );
    println!("{:<42} {:>9} {:>9}", "engine", "accuracy", "drop");

    let (calib, _) = train
        .batch(&(0..64).collect::<Vec<_>>())
        .expect("calibration batch");
    let compiled = BaselineNetwork::compile(&net, &calib).expect("compiles");

    let report = |name: &str, acc: f32| {
        println!(
            "{:<42} {:>8.1}% {:>8.1}%",
            name,
            acc * 100.0,
            (ideal - acc) * 100.0
        );
    };

    let level = LevelBased::paper();
    report(
        &format!(
            "{} ({}b DAC / {}b ADC)",
            level.name(),
            level.dac_bits(),
            level.adc_bits()
        ),
        compiled.accuracy(&level, &test).expect("level eval"),
    );
    for window in [64usize, 8] {
        let rate = RateCoding::new(window).expect("valid window");
        report(
            &format!("{} ({window}-slot window)", rate.name()),
            compiled.accuracy(&rate, &test).expect("rate eval"),
        );
    }
    let pwm = PwmBased::paper();
    report(
        &format!("{} ({} width steps)", pwm.name(), pwm.width_steps()),
        compiled.accuracy(&pwm, &test).expect("pwm eval"),
    );
    let temporal = TemporalCoding::paper();
    report(
        temporal.name(),
        compiled.accuracy(&temporal, &test).expect("temporal eval"),
    );

    let hw =
        HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).expect("resipe compiles");
    let acc = hw.accuracy(&test).expect("resipe eval");
    report("ReSiPE (this work, exact physics)", acc);

    println!(
        "\nAll engines run the identical differential-crossbar weights; the\n\
         differences are each format's conversion losses (DAC/ADC resolution,\n\
         spike-count quantization, pulse-width clocking, leaky integration).\n\
         Note the asymmetry: the baseline rows are functional models that\n\
         include ONLY their quantization effects, while the ReSiPE row runs\n\
         the full exact analog physics (ramp non-linearity included) — its\n\
         drop is an upper bound, not a like-for-like comparison."
    );
}
