//! Regenerates **Table II** of the ReSiPE paper: power, power efficiency,
//! latency and area of ReSiPE vs. the level-based \[14,17\], PWM \[15\] and
//! rate-coding \[11,13\] designs, plus the Sec. IV-B headline claims and the
//! COG power breakdown.
//!
//! ```text
//! cargo run -p resipe-bench --bin table2 [--ccog-sweep]
//! ```
//!
//! `--ccog-sweep` adds the MIM-capacitor scaling ablation the paper
//! points to ("future technology scaling that enables smaller MIM
//! capacitors in COG clusters could induce further energy reduction").

use resipe::config::ResipeConfig;
use resipe::power::{EnergyModel, PeripheralCosts};
use resipe_analog::units::Farads;
use resipe_baselines::comparison::ComparisonTable;
use resipe_bench::Args;

fn main() {
    let args = Args::from_env();
    let table = ComparisonTable::paper();

    println!("Table II — PIM design comparison (32x32 array, 65 nm)\n");
    print!("{}", table.render());

    let h = table.headline();
    println!("\nHeadline claims (measured vs. paper):");
    println!(
        "  power efficiency vs level-based : {:>6.2}x   (paper: 1.97x)",
        h.eff_vs_level
    );
    println!(
        "  power efficiency vs rate-coding : {:>6.2}x   (paper: 2.41x)",
        h.eff_vs_rate
    );
    println!(
        "  power efficiency vs PWM         : {:>6.2}x   (paper: 49.76x)",
        h.eff_vs_pwm
    );
    println!(
        "  power reduction vs rate-coding  : {:>6.1}%   (paper: 67.1%)",
        h.power_reduction_vs_rate * 100.0
    );
    println!(
        "  latency reduction vs rate-coding: {:>6.1}%   (paper: 50%)",
        h.latency_reduction_vs_rate * 100.0
    );
    println!(
        "  latency reduction vs PWM        : {:>6.1}%   (paper: 68.8%)",
        h.latency_reduction_vs_pwm * 100.0
    );
    println!(
        "  area saving vs rate-coding      : {:>6.1}%   (paper: 14.2%)",
        h.area_saving_vs_rate * 100.0
    );
    println!(
        "  area saving vs level-based      : {:>6.1}%   (paper: 85.3%)",
        h.area_saving_vs_level * 100.0
    );

    let breakdown = EnergyModel::paper().mvm_energy();
    println!("\nReSiPE per-MVM energy breakdown:");
    println!("  COG cluster : {:>8.3} pJ", breakdown.cog.as_pico());
    println!("  global dec. : {:>8.3} pJ", breakdown.gd.as_pico());
    println!("  crossbar    : {:>8.3} pJ", breakdown.crossbar.as_pico());
    println!(
        "  COG share   : {:>8.2} %   (paper: 98.1%)",
        breakdown.cog_fraction() * 100.0
    );

    if args.has("ccog-sweep") {
        println!("\nMIM-capacitor scaling ablation (C_cog sweep):");
        println!(
            "{:>12} {:>12} {:>12}",
            "C_cog (fF)", "MVM (pJ)", "power (mW)"
        );
        for ff in [100.0, 75.0, 50.0, 25.0, 10.0] {
            let cfg = ResipeConfig::paper().with_c_cog(Farads::from_femto(ff));
            let model =
                EnergyModel::new(cfg, 32, 32, PeripheralCosts::paper()).expect("valid sweep point");
            println!(
                "{:>12.0} {:>12.3} {:>12.3}",
                ff,
                model.mvm_energy().total().as_pico(),
                model.power().as_milli()
            );
        }
    }
}
