//! Regenerates **Fig. 6** of the ReSiPE paper: the trade-off between
//! computing latency and design area under iso-throughput constraints —
//! replicating engines to fill an area budget, ReSiPE delivers the
//! highest aggregate throughput.
//!
//! ```text
//! cargo run -p resipe-bench --bin fig6 [--budgets N] [--csv]
//! ```

use resipe_analog::units::SquareMicrometers;
use resipe_baselines::throughput::ThroughputModel;
use resipe_bench::Args;

fn main() {
    let args = Args::from_env();
    let n_budgets = args.usize_of("budgets", 8);
    let model = ThroughputModel::paper();

    // Budgets from one level-based engine up to a small accelerator die.
    let budgets: Vec<SquareMicrometers> = (1..=n_budgets)
        .map(|i| SquareMicrometers(50_000.0 * i as f64))
        .collect();
    let series = model.sweep(&budgets).expect("positive budgets");

    println!("Fig. 6 — throughput under area budgets (engines replicated)\n");
    if args.has("csv") {
        println!("design,budget_um2,engines,total_gops,latency_ns");
        for design_series in &series {
            for p in design_series {
                println!(
                    "{},{:.0},{},{:.2},{:.1}",
                    p.name, p.budget.0, p.engines, p.total_gops, p.latency_ns
                );
            }
        }
    } else {
        print!("{:>14}", "budget (um^2)");
        for s in &series {
            print!(" {:>22}", s[0].name);
        }
        println!();
        for (i, b) in budgets.iter().enumerate() {
            print!("{:>14.0}", b.0);
            for s in &series {
                print!(" {:>16.1} GOPS", s[i].total_gops);
            }
            println!();
        }
    }

    // Iso-throughput reading: area each design needs for fixed targets
    // (the dashed lines of Fig. 6).
    println!("\nArea required to reach target throughput (um^2):");
    print!("{:>14}", "target (GOPS)");
    let lib = model.library().clone();
    let designs = [&lib.level, &lib.pwm, &lib.rate, &lib.resipe];
    for d in designs {
        print!(" {:>22}", d.name);
    }
    println!();
    for target in [10.0, 50.0, 100.0, 500.0] {
        print!("{target:>14.0}");
        for d in designs {
            let area = model.area_for_target(d, target).expect("positive target");
            print!(" {:>22.0}", area.0);
        }
        println!();
    }
    println!(
        "\nShape check: under every budget ReSiPE provides the highest throughput, \
         and it needs the least area at every iso-throughput line (paper Fig. 6)."
    );
}
