//! Regenerates **Fig. 7** of the ReSiPE paper: classification accuracy of
//! the six benchmark networks mapped onto the engine, under the circuit
//! non-linearity (σ = 0) and ReRAM process variation with
//! σ ∈ {0, 5, 10, 15, 20} %.
//!
//! ```text
//! cargo run --release -p resipe-bench --bin fig7 \
//!     [--quick] [--models mlp1,mlp2,lenet,alexnet,vgg16,vgg19] \
//!     [--train N] [--test N] [--epochs N] [--trials N] \
//!     [--encoding default|linear-only|pass-through] [--window-sweep] [--csv]
//!     [--save]
//! ```
//!
//! `--save` additionally writes the report to `out/fig7_output.txt`
//! (the `out/` directory is git-ignored).
//!
//! Expected shape (paper Sec. IV-C): the σ = 0 drop (non-linearity only)
//! stays below ~2.5 %; a 20 % device variation costs 1–15 %; deeper
//! models are more sensitive to variation.

use resipe::cache::CompileCache;
use resipe::config::ResipeConfig;
use resipe::inference::{CompileOptions, EncodingPolicy};
use resipe_analog::units::Seconds;
use resipe_bench::Args;
use resipe_nn::data::{synth_digits, synth_objects, Dataset};
use resipe_nn::metrics::accuracy;
use resipe_nn::models::ModelKind;
use resipe_nn::network::Network;
use resipe_nn::train::{Sgd, TrainConfig};
use resipe_reram::variation::VariationModel;

/// Mirrors the stdout report into a buffer so `--save` can persist it.
#[derive(Default)]
struct Report {
    save: bool,
    buf: String,
}

impl Report {
    fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        println!("{s}");
        if self.save {
            self.buf.push_str(s);
            self.buf.push('\n');
        }
    }

    fn persist(&self) {
        if !self.save {
            return;
        }
        std::fs::create_dir_all("out").expect("create out/");
        std::fs::write("out/fig7_output.txt", &self.buf).expect("write out/fig7_output.txt");
        eprintln!("wrote out/fig7_output.txt");
    }
}

fn parse_models(args: &Args, quick: bool) -> Vec<ModelKind> {
    if let Some(list) = args.value_of("models") {
        list.split(',')
            .filter_map(|name| match name.trim() {
                "mlp1" => Some(ModelKind::Mlp1),
                "mlp2" => Some(ModelKind::Mlp2),
                "lenet" => Some(ModelKind::Cnn1Lenet),
                "alexnet" => Some(ModelKind::Cnn2Alexnet),
                "vgg16" => Some(ModelKind::Cnn3Vgg16),
                "vgg19" => Some(ModelKind::Cnn4Vgg19),
                other => {
                    eprintln!("warning: unknown model '{other}' skipped");
                    None
                }
            })
            .collect()
    } else if quick {
        vec![ModelKind::Mlp1, ModelKind::Mlp2]
    } else {
        ModelKind::ALL.to_vec()
    }
}

fn train_model(kind: ModelKind, train: &Dataset, epochs: usize) -> Network {
    let mut net = kind.build(0xf167 + kind as u64).expect("model builds");
    // Plain MLPs tolerate a hot learning rate; the conv stacks need a
    // gentler one to avoid dead-ReLU collapse, and the deep VGG stacks a
    // gentler one still (plus a few extra epochs).
    let (lr, epochs) = match kind {
        ModelKind::Mlp1 | ModelKind::Mlp2 => (0.08, epochs),
        ModelKind::Cnn1Lenet | ModelKind::Cnn2Alexnet => (0.02, epochs),
        ModelKind::Cnn3Vgg16 => (0.005, epochs.max(15)),
        ModelKind::Cnn4Vgg19 => (0.004, epochs.max(25)),
    };
    let report = Sgd::new(
        TrainConfig::new(epochs)
            .with_learning_rate(lr)
            .with_batch_size(32),
    )
    .fit(&mut net, train)
    .expect("training converges");
    eprintln!(
        "  trained {} ({} params): loss {:.3}, train acc {:.1}%",
        kind,
        net.param_count(),
        report.final_loss(),
        report.final_accuracy() * 100.0
    );
    net
}

fn main() {
    let args = Args::from_env();
    let quick = args.has("quick");
    let models = parse_models(&args, quick);
    let n_train = args.usize_of("train", if quick { 300 } else { 800 });
    let n_test = args.usize_of("test", if quick { 60 } else { 120 });
    let epochs = args.usize_of("epochs", if quick { 4 } else { 10 });
    let trials = args.usize_of("trials", if quick { 2 } else { 3 });
    let encoding = match args.value_of("encoding") {
        Some("linear-only") => EncodingPolicy::AllLinearTime,
        Some("pass-through") => EncodingPolicy::AllPassThrough,
        _ => EncodingPolicy::FirstLinearThenPassThrough,
    };

    let mut report = Report {
        save: args.has("save"),
        buf: String::new(),
    };
    let mut cache = CompileCache::new(8);

    report.line("Fig. 7 — accuracy under non-linearity and process variation");
    report.line(format!(
        "models: {:?}, train {n_train}, test {n_test}, epochs {epochs}, \
         {trials} PV trial(s)/sigma, encoding {encoding:?}\n",
        models.iter().map(|m| m.paper_name()).collect::<Vec<_>>()
    ));

    let digits_train = synth_digits(n_train, 1).expect("dataset");
    let digits_test = synth_digits(n_test, 2).expect("dataset");
    let objects_train = synth_objects(n_train, 3).expect("dataset");
    let objects_test = synth_objects(n_test, 4).expect("dataset");

    let sigmas = VariationModel::PAPER_SIGMAS;
    if args.has("csv") {
        report.line("model,ideal,sigma,hardware_accuracy");
    } else {
        let mut header = format!("{:<20} {:>7}", "model", "ideal");
        for s in sigmas {
            header.push_str(&format!(" {:>8}", format!("s={:.0}%", s * 100.0)));
        }
        header.push_str(&format!(" {:>9} {:>9}", "drop(s=0)", "drop(20%)"));
        report.line(header);
    }

    for kind in models {
        let (train, test) = if kind.uses_digits() {
            (&digits_train, &digits_test)
        } else {
            (&objects_train, &objects_test)
        };
        let mut net = train_model(kind, train, epochs);
        let ideal = accuracy(&mut net, test).expect("ideal eval");
        let (calib, _) = train
            .batch(&(0..64.min(train.len())).collect::<Vec<_>>())
            .expect("calibration batch");

        let mut per_sigma = Vec::new();
        for &sigma in &sigmas {
            let model = VariationModel::device_to_device(sigma).expect("valid sigma");
            let mut sum = 0.0;
            let n_trials = if sigma == 0.0 { 1 } else { trials };
            for trial in 0..n_trials {
                let opts = CompileOptions::paper()
                    .with_variation(model)
                    .with_seed(1000 * trial as u64 + 7)
                    .with_encoding(encoding);
                let hw = cache.get_or_compile(&net, &calib, &opts).expect("compiles");
                sum += hw.accuracy(test).expect("hardware eval");
            }
            per_sigma.push(sum / n_trials as f32);
        }

        if args.has("csv") {
            for (s, acc) in sigmas.iter().zip(&per_sigma) {
                report.line(format!(
                    "{},{:.4},{:.2},{:.4}",
                    kind.paper_name(),
                    ideal,
                    s,
                    acc
                ));
            }
        } else {
            let mut row = format!("{:<20} {:>6.1}%", kind.paper_name(), ideal * 100.0);
            for acc in &per_sigma {
                row.push_str(&format!(" {:>7.1}%", acc * 100.0));
            }
            row.push_str(&format!(
                " {:>8.1}% {:>8.1}%",
                (ideal - per_sigma[0]) * 100.0,
                (ideal - per_sigma[sigmas.len() - 1]) * 100.0
            ));
            report.line(row);
        }
    }

    if args.has("window-sweep") {
        report.line("\nEncode-window ablation (MLP-1, sigma = 0): drop vs t_max");
        let mut net = train_model(ModelKind::Mlp1, &digits_train, epochs);
        let ideal = accuracy(&mut net, &digits_test).expect("ideal eval");
        let (calib, _) = digits_train
            .batch(&(0..64.min(digits_train.len())).collect::<Vec<_>>())
            .expect("calibration batch");
        report.line(format!(
            "{:>12} {:>10} {:>10}",
            "t_max (ns)", "hw acc", "drop"
        ));
        for tmax in [80.0, 40.0, 20.0, 10.0, 5.0] {
            let cfg = ResipeConfig::paper().with_t_max(Seconds(tmax * 1e-9));
            let opts = CompileOptions::paper().with_config(cfg);
            let hw = cache.get_or_compile(&net, &calib, &opts).expect("compiles");
            let acc = hw.accuracy(&digits_test).expect("hardware eval");
            report.line(format!(
                "{:>12.0} {:>9.1}% {:>9.1}%",
                tmax,
                acc * 100.0,
                (ideal - acc) * 100.0
            ));
        }
        report.line(
            "\nThe ramp's high gain near t = 0 (slope t_max/tau_gd) amplifies small\n\
             inputs; narrowing the encode window trades timing resolution for\n\
             linearity. The compile default (20 ns) lands at the paper's < 2.5% drop.",
        );
    }

    eprintln!(
        "compile cache: {} hit(s), {} miss(es)",
        cache.hits(),
        cache.misses()
    );
    report.persist();
}
