//! Live-traffic resilience campaign: accuracy and availability under
//! online aging, with and without background scrubbing
//! (`BENCH_scrub.json` at the repo root).
//!
//! Two phases run against the **same** trained and compiled MLP-1:
//!
//! - **Accuracy curves** — two bit-identical clones of the compiled
//!   network age on the same deterministic [`AgingClock`] schedule
//!   (retention drift driven by served-request count). One clone is left
//!   alone (scrub OFF); the other gets a [`Scrubber`] pass after every
//!   aging checkpoint (scrub ON). The OFF curve must degrade
//!   monotonically; the ON curve must finish within one accuracy point
//!   of the fresh compile.
//! - **Availability under live repair** — a real [`Server`] with an
//!   attached background scrubber serves concurrent clients over
//!   loopback TCP while the main thread ages the served network
//!   mid-load. Every request must be answered: zero busy rejects, zero
//!   expiries, zero shutdown rejects, `accepted == completed`, while
//!   the scrubber detects the regression and hot-swaps repaired state.
//!
//! ```text
//! cargo run --release -p resipe-bench --bin scrub_sweep             # full
//! cargo run --release -p resipe-bench --bin scrub_sweep -- --smoke  # CI gate
//! ```
//!
//! The process exits non-zero if any resilience check fails, so
//! `--smoke` doubles as the CI acceptance gate.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use resipe::inference::{CompileOptions, HardwareNetwork};
use resipe::repair::RepairPolicy;
use resipe::scrub::{ScrubConfig, Scrubber};
use resipe_analog::units::Seconds;
use resipe_bench::Args;
use resipe_nn::data::synth_digits;
use resipe_nn::models;
use resipe_nn::tensor::Tensor;
use resipe_nn::train::{Sgd, TrainConfig};
use resipe_reram::aging::{AgingClock, AgingConfig};
use resipe_reram::faults::RetentionDrift;
use resipe_serve::{Client, ModelSpec, Server, ServerConfig};

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_owned()
    }
}

/// Detection policy sharp enough to see smooth retention drift: the
/// default 0.4-swing threshold only trips on hard faults, while drift
/// relaxes every cell a little — probe at 0.05 swings instead.
fn drift_sensitive_policy() -> RepairPolicy {
    let mut policy = RepairPolicy::full();
    policy.bist.cell_threshold = 0.05;
    policy
}

/// One accuracy checkpoint on an aging curve.
struct Point {
    served_requests: u64,
    accuracy: f64,
}

fn curve_json(points: &[Point]) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"served_requests\": {}, \"accuracy\": {}}}",
                p.served_requests,
                json_num(p.accuracy)
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let n_train = args.usize_of("train", if smoke { 200 } else { 600 });
    let n_test = args.usize_of("test", if smoke { 120 } else { 300 });
    let epochs = args.usize_of("epochs", if smoke { 2 } else { 6 });
    let checkpoints = args
        .usize_of("checkpoints", if smoke { 4 } else { 8 })
        .max(1);
    let step_requests = args.usize_of("step-requests", 5_000).max(1) as u64;
    let seconds_per_request = args.f64_of("seconds-per-request", 100.0);
    let tau_s = args.f64_of("drift-tau", 1e6);
    let clients = args.usize_of("clients", 4).max(1);
    let per_client = args
        .usize_of("requests", if smoke { 40 } else { 120 })
        .max(1);
    let out_path = args
        .value_of("out")
        .unwrap_or("BENCH_scrub.json")
        .to_owned();

    eprintln!("training MLP-1 on {n_train} synthetic digits ({epochs} epochs)...");
    let train = synth_digits(n_train, 1).expect("train set");
    let test = synth_digits(n_test, 2).expect("test set");
    let mut net = models::mlp1(7).expect("model");
    Sgd::new(TrainConfig::new(epochs).with_learning_rate(0.1))
        .fit(&mut net, &train)
        .expect("training");
    let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).expect("calib");
    let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).expect("compile");
    let fresh_accuracy = f64::from(hw.accuracy(&test).expect("fresh accuracy"));
    eprintln!("fresh accuracy: {fresh_accuracy:.4}");

    let drift = RetentionDrift::new(Seconds(tau_s)).expect("drift model");
    let aging = AgingConfig::new(Seconds(seconds_per_request), drift)
        .expect("aging config")
        .with_seed(0xa9e);

    // ---- Phase 1: accuracy vs served requests, scrub OFF vs scrub ON.
    // Both clones start bit-identical and age on the same deterministic
    // schedule, so any divergence is the scrubber's doing.
    let hw_off = hw.clone();
    let mut clock_off = AgingClock::new(aging);
    let hw_on = Arc::new(hw.clone());
    let mut clock_on = AgingClock::new(aging);
    let scrub_config = ScrubConfig::new()
        .with_policy(drift_sensitive_policy())
        .with_seed(7);
    // Attached while fresh: the per-tile health baseline is recorded on
    // an undamaged part, so later drift registers as a regression.
    let scrubber = Scrubber::new(Arc::clone(&hw_on), scrub_config).expect("scrubber");

    let mut off_curve = vec![Point {
        served_requests: 0,
        accuracy: fresh_accuracy,
    }];
    let mut on_curve = vec![Point {
        served_requests: 0,
        accuracy: fresh_accuracy,
    }];
    let mut total_repairs = 0u64;
    for c in 1..=checkpoints {
        if let Some(step) = clock_off.advance(step_requests) {
            hw_off.age(&step).expect("age scrub-off clone");
        }
        let off_acc = f64::from(hw_off.accuracy(&test).expect("scrub-off accuracy"));
        off_curve.push(Point {
            served_requests: clock_off.served(),
            accuracy: off_acc,
        });

        if let Some(step) = clock_on.advance(step_requests) {
            hw_on.age(&step).expect("age scrub-on clone");
        }
        let report = scrubber.scrub_pass().expect("scrub pass");
        total_repairs += report.repairs;
        let on_acc = f64::from(hw_on.accuracy(&test).expect("scrub-on accuracy"));
        on_curve.push(Point {
            served_requests: clock_on.served(),
            accuracy: on_acc,
        });
        eprintln!(
            "checkpoint {c}/{checkpoints} ({} requests): scrub-off {:.4}, \
             scrub-on {:.4} ({} repairs this pass)",
            clock_off.served(),
            off_acc,
            on_acc,
            report.repairs
        );
    }

    // Scrub OFF must degrade monotonically (small tolerance for the
    // nonlinear readout jiggling a point or two) and end clearly below
    // fresh; scrub ON must recover to within one point of fresh.
    let off_final = off_curve.last().map(|p| p.accuracy).unwrap_or(0.0);
    let on_final = on_curve.last().map(|p| p.accuracy).unwrap_or(0.0);
    let degraded_monotone = off_curve
        .windows(2)
        .all(|w| w[1].accuracy <= w[0].accuracy + 0.02);
    let final_gap = fresh_accuracy - on_final;
    let recovered = final_gap <= 0.01;
    assert!(
        degraded_monotone,
        "scrub-off curve failed to degrade monotonically: {:?}",
        off_curve.iter().map(|p| p.accuracy).collect::<Vec<_>>()
    );
    assert!(
        off_final < fresh_accuracy - 0.02,
        "aging too gentle to measure: scrub-off accuracy {off_final:.4} \
         vs fresh {fresh_accuracy:.4}"
    );
    assert!(
        recovered,
        "scrubber failed to recover accuracy: {on_final:.4} vs fresh \
         {fresh_accuracy:.4} (gap {final_gap:.4} > 0.01)"
    );
    assert!(total_repairs > 0, "scrub-on curve saw no repairs");

    // ---- Phase 2: availability while the served network is repaired
    // under live concurrent load.
    eprintln!(
        "availability: {clients} clients x {per_client} requests with \
         mid-load aging and background scrubbing..."
    );
    let served_hw =
        HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).expect("compile");
    let total = clients * per_client;
    let sample_shape = train.sample_shape().to_vec();
    let width: usize = sample_shape.iter().product();
    let indices: Vec<usize> = (0..total).map(|i| i % train.len()).collect();
    let (corpus, _) = train.batch(&indices).expect("corpus");

    let mut server = Server::builder()
        .config(
            ServerConfig::default()
                .with_queue_capacity((2 * total).max(64))
                .with_scrub(
                    ScrubConfig::new()
                        .with_policy(drift_sensitive_policy())
                        .with_interval(Duration::from_millis(2))
                        .with_seed(7),
                ),
        )
        .register_model("mlp1", ModelSpec::compiled(served_hw, &sample_shape))
        .bind("127.0.0.1:0")
        .expect("server bind");
    let addr = server.local_addr();

    let load_start = Instant::now();
    let mut joins = Vec::new();
    for c in 0..clients {
        let corpus = corpus.clone();
        let sample_shape = sample_shape.clone();
        joins.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("client");
            for r in 0..per_client {
                let idx = c * per_client + r;
                let sample = Tensor::from_vec(
                    corpus.data()[idx * width..(idx + 1) * width].to_vec(),
                    &sample_shape,
                )
                .expect("sample");
                let _ = client.infer(&sample).expect("infer under repair");
                // Pace the load so the window spans the mid-load aging
                // and at least a few background scrub passes.
                thread::sleep(Duration::from_micros(500));
            }
        }));
    }

    // Mid-load: age the served part. The background scrubber must catch
    // the regression and hot-swap repaired state with no request lost.
    thread::sleep(Duration::from_millis(10));
    let mut serve_clock = AgingClock::new(aging);
    let network = server.network().expect("served network handle");
    if let Some(step) = serve_clock.advance(step_requests * checkpoints as u64) {
        network.age(&step).expect("age served network");
    }

    for j in joins {
        j.join().expect("client thread");
    }
    // The scrubber runs on its own cadence; give it a bounded grace
    // window to catch the regression if the load finished too fast.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().scrub_repairs == 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    let elapsed_s = load_start.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();

    let lossless = stats.accepted == total as u64
        && stats.completed == total as u64
        && stats.rejected_busy == 0
        && stats.expired == 0
        && stats.shutdown_rejects == 0
        && stats.engine_errors == 0;
    assert!(
        lossless,
        "availability broke under hot repair: accepted {}, completed {}, \
         busy {}, expired {}, shutdown {}, engine errors {} (of {total})",
        stats.accepted,
        stats.completed,
        stats.rejected_busy,
        stats.expired,
        stats.shutdown_rejects,
        stats.engine_errors
    );
    assert!(
        stats.scrub_passes > 0,
        "background scrubber never ran a pass"
    );
    assert!(
        stats.scrub_repairs > 0,
        "background scrubber never repaired the aged network"
    );
    assert!(
        stats.plan_swaps >= 2,
        "expected at least the aging publish and one repair swap, saw {}",
        stats.plan_swaps
    );

    // ---- Report.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"model\": \"MLP-1\",\n");
    json.push_str(&format!(
        "  \"fresh_accuracy\": {},\n",
        json_num(fresh_accuracy)
    ));
    json.push_str(&format!("  \"checkpoints\": {checkpoints},\n"));
    json.push_str(&format!(
        "  \"requests_per_checkpoint\": {step_requests},\n"
    ));
    json.push_str(&format!(
        "  \"seconds_per_request\": {},\n",
        json_num(seconds_per_request)
    ));
    json.push_str(&format!("  \"drift_tau_s\": {},\n", json_num(tau_s)));
    json.push_str(&format!("  \"scrub_off\": {},\n", curve_json(&off_curve)));
    json.push_str(&format!("  \"scrub_on\": {},\n", curve_json(&on_curve)));
    json.push_str(&format!("  \"degraded_monotone\": {degraded_monotone},\n"));
    json.push_str(&format!("  \"final_gap\": {},\n", json_num(final_gap)));
    json.push_str(&format!("  \"recovered\": {recovered},\n"));
    json.push_str(&format!("  \"scrub_repairs_curve\": {total_repairs},\n"));
    json.push_str(&format!(
        "  \"availability\": {{\"total_requests\": {total}, \"elapsed_s\": {}, \
         \"accepted\": {}, \"completed\": {}, \"rejected_busy\": {}, \
         \"expired\": {}, \"shutdown_rejects\": {}, \"engine_errors\": {}, \
         \"scrub_passes\": {}, \"scrub_tiles\": {}, \"scrub_repairs\": {}, \
         \"plan_swaps\": {}, \"lossless\": {lossless}}}\n",
        json_num(elapsed_s),
        stats.accepted,
        stats.completed,
        stats.rejected_busy,
        stats.expired,
        stats.shutdown_rejects,
        stats.engine_errors,
        stats.scrub_passes,
        stats.scrub_tiles,
        stats.scrub_repairs,
        stats.plan_swaps
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_scrub.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    println!(
        "scrub OFF: {fresh_accuracy:.4} -> {off_final:.4} | scrub ON: \
         {fresh_accuracy:.4} -> {on_final:.4} (gap {final_gap:.4}) | \
         availability: {}/{total} answered, {} repairs, {} swaps",
        stats.completed, stats.scrub_repairs, stats.plan_swaps
    );
}
