//! Shared harness utilities for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` for the experiment index. This library holds
//! the small shared pieces: flag parsing, series formatting, and the
//! workload generators used by more than one experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe_analog::units::{Seconds, Siemens};

/// Minimal `--flag value` / `--switch` parser over `std::env::args`.
///
/// ```
/// use resipe_bench::Args;
/// let args = Args::from_iter(["prog", "--trials", "5", "--quick"]);
/// assert_eq!(args.value_of("trials"), Some("5"));
/// assert!(args.has("quick"));
/// assert!(!args.has("verbose"));
/// assert_eq!(args.usize_of("trials", 1), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    tokens: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Args {
        Args {
            tokens: std::env::args().skip(1).collect(),
        }
    }

    /// Parses an explicit token list (the first token is skipped as the
    /// program name).
    #[allow(clippy::should_implement_trait)] // deliberate constructor name
    pub fn from_iter<I, S>(iter: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Args {
            tokens: iter.into_iter().map(Into::into).skip(1).collect(),
        }
    }

    /// `true` if `--name` appears.
    pub fn has(&self, name: &str) -> bool {
        self.tokens.iter().any(|t| t == &format!("--{name}"))
    }

    /// The value following `--name`, if any.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.tokens
            .windows(2)
            .find(|w| w[0] == flag)
            .map(|w| w[1].as_str())
    }

    /// Parses the value of `--name` as usize, with a default.
    pub fn usize_of(&self, name: &str, default: usize) -> usize {
        self.value_of(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Parses the value of `--name` as f64, with a default.
    pub fn f64_of(&self, name: &str, default: f64) -> f64 {
        self.value_of(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// One random Fig. 5 sample: a 32-cell column with random conductances
/// scaled to a target total, and random input spike times.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Sample {
    /// Input spike times.
    pub t_in: Vec<Seconds>,
    /// Cell conductances.
    pub g: Vec<Siemens>,
    /// The total column conductance.
    pub g_total: Siemens,
    /// The x-axis "input strength": `Σ t_in,i · G_i` (in s·S).
    pub strength: f64,
}

/// Draws `n` Fig. 5 samples: total G uniform in
/// `[g_total_min, g_total_max]`, per-cell shares Dirichlet-like, input
/// times uniform in `[t_min, t_max]` — matching the paper's "100 random
/// sample points with different t_in and G", ΣG ∈ 0.32–3.2 mS,
/// t_in ∈ 10–80 ns.
///
/// # Panics
///
/// Panics if `rows` is zero or ranges are inverted.
pub fn fig5_samples(
    n: usize,
    rows: usize,
    g_total_range: (Siemens, Siemens),
    t_range: (Seconds, Seconds),
    seed: u64,
) -> Vec<Fig5Sample> {
    assert!(rows > 0, "rows must be nonzero");
    assert!(g_total_range.0 .0 <= g_total_range.1 .0, "inverted G range");
    assert!(t_range.0 .0 <= t_range.1 .0, "inverted t range");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let g_total = rng.gen_range(g_total_range.0 .0..=g_total_range.1 .0);
            // Random positive shares normalized to the target total.
            let shares: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.05..1.0)).collect();
            let sum: f64 = shares.iter().sum();
            let g: Vec<Siemens> = shares.iter().map(|s| Siemens(s / sum * g_total)).collect();
            let t_in: Vec<Seconds> = (0..rows)
                .map(|_| Seconds(rng.gen_range(t_range.0 .0..=t_range.1 .0)))
                .collect();
            let strength = t_in.iter().zip(&g).map(|(t, gi)| t.0 * gi.0).sum();
            Fig5Sample {
                t_in,
                g,
                g_total: Siemens(g_total),
                strength,
            }
        })
        .collect()
}

/// Ordinary least-squares slope of `y = k·x` through the origin.
///
/// Returns `None` for empty or all-zero inputs.
pub fn fit_slope(points: &[(f64, f64)]) -> Option<f64> {
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    if points.is_empty() || sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    Some(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parsing() {
        let a = Args::from_iter(["p", "--n", "7", "--flag", "--x", "2.5"]);
        assert_eq!(a.usize_of("n", 0), 7);
        assert!(a.has("flag"));
        assert!(!a.has("other"));
        assert_eq!(a.f64_of("x", 0.0), 2.5);
        assert_eq!(a.f64_of("missing", 1.5), 1.5);
        assert_eq!(a.value_of("missing"), None);
    }

    #[test]
    fn fig5_sample_invariants() {
        let samples = fig5_samples(
            50,
            32,
            (Siemens(0.32e-3), Siemens(3.2e-3)),
            (Seconds(10e-9), Seconds(80e-9)),
            42,
        );
        assert_eq!(samples.len(), 50);
        for s in &samples {
            assert_eq!(s.t_in.len(), 32);
            assert_eq!(s.g.len(), 32);
            let total: f64 = s.g.iter().map(|g| g.0).sum();
            assert!((total - s.g_total.0).abs() / s.g_total.0 < 1e-9);
            assert!(s.g_total.0 >= 0.32e-3 && s.g_total.0 <= 3.2e-3);
            for t in &s.t_in {
                assert!(t.0 >= 10e-9 && t.0 <= 80e-9);
            }
            assert!(s.strength > 0.0);
        }
    }

    #[test]
    fn fig5_samples_deterministic() {
        let a = fig5_samples(
            5,
            4,
            (Siemens(1e-4), Siemens(1e-3)),
            (Seconds(1e-9), Seconds(8e-8)),
            1,
        );
        let b = fig5_samples(
            5,
            4,
            (Siemens(1e-4), Siemens(1e-3)),
            (Seconds(1e-9), Seconds(8e-8)),
            1,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn slope_fit() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        let k = fit_slope(&pts).unwrap();
        assert!((k - 3.0).abs() < 1e-12);
        assert!(fit_slope(&[]).is_none());
        assert!(fit_slope(&[(0.0, 1.0)]).is_none());
    }
}
