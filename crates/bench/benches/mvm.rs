//! Criterion bench: the behavioural single-spiking MVM hot path across
//! crossbar sizes (the kernel behind every Fig. 7 evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::batch::BatchPlan;
use resipe::config::ResipeConfig;
use resipe::engine::ResipeEngine;
use resipe::mapping::{SpikeEncoding, TileMapper};
use resipe_analog::units::Seconds;

fn bench_mvm_matrix(c: &mut Criterion) {
    let engine = ResipeEngine::new(ResipeConfig::paper());
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("mvm_matrix");
    for &size in &[8usize, 16, 32, 64] {
        let g: Vec<f64> = (0..size * size)
            .map(|_| rng.gen_range(1e-6..20e-6))
            .collect();
        let t_in: Vec<Seconds> = (0..size)
            .map(|_| Seconds(rng.gen_range(0.0..80e-9)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                engine
                    .mvm_matrix(std::hint::black_box(&g), size, size, &t_in)
                    .expect("valid mvm")
            })
        });
    }
    group.finish();
}

/// The same MVM on the column-major (SoA) conductance layout: the
/// contiguous per-column walk the batch plan streams.
fn bench_mvm_matrix_cm(c: &mut Criterion) {
    let engine = ResipeEngine::new(ResipeConfig::paper());
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("mvm_matrix_cm");
    for &size in &[8usize, 16, 32, 64] {
        // Column-major: column j occupies g[j * size .. (j + 1) * size].
        let g: Vec<f64> = (0..size * size)
            .map(|_| rng.gen_range(1e-6..20e-6))
            .collect();
        let t_in: Vec<Seconds> = (0..size)
            .map(|_| Seconds(rng.gen_range(0.0..80e-9)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                engine
                    .mvm_matrix_cm(std::hint::black_box(&g), size, size, &t_in)
                    .expect("valid mvm")
            })
        });
    }
    group.finish();
}

/// The cache-blocked batch kernel at pinned block sizes: one pass over
/// the tile conductances serves the whole sample block.
fn bench_forward_block(c: &mut Criterion) {
    let engine = ResipeEngine::new(ResipeConfig::paper());
    let mut rng = StdRng::seed_from_u64(3);
    let weights: Vec<f64> = (0..256 * 32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mapped = TileMapper::paper().map(&weights, 256, 32).expect("maps");
    let plan = BatchPlan::new(&engine, &mapped, SpikeEncoding::LinearTime);
    let mut group = c.benchmark_group("forward_block_256x32");
    for &block in &[1usize, 8, 32] {
        let a: Vec<f64> = (0..block * 256).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut out = vec![0.0f64; block * 32];
        let mut scratch = plan.scratch();
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, _| {
            b.iter(|| {
                plan.forward_block(std::hint::black_box(&a), block, &mut out, &mut scratch)
                    .expect("valid block")
            })
        });
    }
    group.finish();
}

fn bench_mapped_forward(c: &mut Criterion) {
    let engine = ResipeEngine::new(ResipeConfig::paper());
    let mut rng = StdRng::seed_from_u64(2);
    let weights: Vec<f64> = (0..256 * 32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mapped = TileMapper::paper().map(&weights, 256, 32).expect("maps");
    let a: Vec<f64> = (0..256).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut group = c.benchmark_group("mapped_forward_256x32");
    for (name, enc) in [
        ("linear_time", SpikeEncoding::LinearTime),
        ("pass_through", SpikeEncoding::PassThrough),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                mapped
                    .forward(&engine, std::hint::black_box(&a), enc)
                    .expect("valid forward")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mvm_matrix,
    bench_mvm_matrix_cm,
    bench_forward_block,
    bench_mapped_forward
);
criterion_main!(benches);
