//! Criterion bench: the behavioural single-spiking MVM hot path across
//! crossbar sizes (the kernel behind every Fig. 7 evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::config::ResipeConfig;
use resipe::engine::ResipeEngine;
use resipe::mapping::{SpikeEncoding, TileMapper};
use resipe_analog::units::Seconds;

fn bench_mvm_matrix(c: &mut Criterion) {
    let engine = ResipeEngine::new(ResipeConfig::paper());
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("mvm_matrix");
    for &size in &[8usize, 16, 32, 64] {
        let g: Vec<f64> = (0..size * size)
            .map(|_| rng.gen_range(1e-6..20e-6))
            .collect();
        let t_in: Vec<Seconds> = (0..size)
            .map(|_| Seconds(rng.gen_range(0.0..80e-9)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                engine
                    .mvm_matrix(std::hint::black_box(&g), size, size, &t_in)
                    .expect("valid mvm")
            })
        });
    }
    group.finish();
}

fn bench_mapped_forward(c: &mut Criterion) {
    let engine = ResipeEngine::new(ResipeConfig::paper());
    let mut rng = StdRng::seed_from_u64(2);
    let weights: Vec<f64> = (0..256 * 32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mapped = TileMapper::paper().map(&weights, 256, 32).expect("maps");
    let a: Vec<f64> = (0..256).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut group = c.benchmark_group("mapped_forward_256x32");
    for (name, enc) in [
        ("linear_time", SpikeEncoding::LinearTime),
        ("pass_through", SpikeEncoding::PassThrough),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                mapped
                    .forward(&engine, std::hint::black_box(&a), enc)
                    .expect("valid forward")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvm_matrix, bench_mapped_forward);
criterion_main!(benches);
