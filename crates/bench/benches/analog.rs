//! Criterion bench: MNA transient simulation cost (the Fig. 3 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use resipe::circuit::AnalogMac;
use resipe::config::ResipeConfig;
use resipe_analog::netlist::{Netlist, Node};
use resipe_analog::transient::{Transient, TransientConfig};
use resipe_analog::units::{Farads, Ohms, Seconds, Siemens, Volts};

fn bench_rc_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_rc_ladder");
    for &stages in &[4usize, 16, 64] {
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        net.voltage_source(Node::GROUND, vdd, Volts(1.0));
        let mut prev = vdd;
        for i in 0..stages {
            let n = net.node(&format!("n{i}"));
            net.resistor(prev, n, Ohms(1e3));
            net.capacitor(n, Node::GROUND, Farads(1e-12));
            prev = n;
        }
        let cfg = TransientConfig::new(Seconds(1e-7))
            .with_step(Seconds(1e-10))
            .with_capture_every(10);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                Transient::new(std::hint::black_box(&net), cfg.clone())
                    .expect("valid config")
                    .run()
                    .expect("converges")
            })
        });
    }
    group.finish();
}

fn bench_analog_mac(c: &mut Criterion) {
    let cfg = ResipeConfig::paper();
    let g = [Siemens(100e-6), Siemens(50e-6)];
    let mac = AnalogMac::new(cfg, &g).expect("valid circuit");
    let t_in = [Seconds(30e-9), Seconds(60e-9)];
    c.bench_function("analog_mac_two_slices_100ps", |b| {
        b.iter(|| {
            mac.run(std::hint::black_box(&t_in), Seconds(100e-12))
                .expect("converges")
        })
    });
}

criterion_group!(benches, bench_rc_ladder, bench_analog_mac);
criterion_main!(benches);
