//! Criterion bench: the four PIM engines on the same 32×32 MVM — the
//! functional cost of each data format's quantization path.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::config::ResipeConfig;
use resipe::engine::ResipeEngine;
use resipe_analog::units::Seconds;
use resipe_baselines::{LevelBased, PimEngine, PwmBased, RateCoding};
use resipe_reram::crossbar::Crossbar;
use resipe_reram::device::ResistanceWindow;

fn workload() -> (Crossbar, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut xb = Crossbar::new(32, 32, ResistanceWindow::RECOMMENDED);
    let fractions: Vec<f64> = (0..32 * 32).map(|_| rng.gen_range(0.0..1.0)).collect();
    xb.program_matrix(&fractions).expect("programs");
    let inputs: Vec<f64> = (0..32).map(|_| rng.gen_range(0.0..1.0)).collect();
    (xb, inputs)
}

fn bench_engines(c: &mut Criterion) {
    let (xb, inputs) = workload();
    let mut group = c.benchmark_group("pim_engines_32x32");

    let level = LevelBased::paper();
    group.bench_function("level_based", |b| {
        b.iter(|| {
            level
                .mvm(&xb, std::hint::black_box(&inputs))
                .expect("valid")
        })
    });

    let rate = RateCoding::paper();
    group.bench_function("rate_coding", |b| {
        b.iter(|| rate.mvm(&xb, std::hint::black_box(&inputs)).expect("valid"))
    });

    let pwm = PwmBased::paper();
    group.bench_function("pwm", |b| {
        b.iter(|| pwm.mvm(&xb, std::hint::black_box(&inputs)).expect("valid"))
    });

    let resipe = ResipeEngine::new(ResipeConfig::paper());
    let t_in: Vec<Seconds> = inputs.iter().map(|&a| Seconds(a * 80e-9)).collect();
    group.bench_function("resipe_exact", |b| {
        b.iter(|| resipe.mvm(&xb, std::hint::black_box(&t_in)).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
