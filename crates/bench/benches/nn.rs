//! Criterion bench: neural-network substrate forward/backward cost.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use resipe_nn::data::synth_digits;
use resipe_nn::layers::{Conv2d, Dense};
use resipe_nn::models;
use resipe_nn::tensor::Tensor;

fn bench_dense_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut dense = Dense::new(784, 128, &mut rng);
    let x = Tensor::full(&[32, 784], 0.5);
    c.bench_function("dense_784x128_batch32", |b| {
        b.iter(|| dense.forward(std::hint::black_box(&x)).expect("valid"))
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut conv = Conv2d::new(8, 16, 3, 1, &mut rng);
    let x = Tensor::full(&[4, 8, 16, 16], 0.5);
    c.bench_function("conv_8to16_k3_16x16_batch4", |b| {
        b.iter(|| conv.forward(std::hint::black_box(&x)).expect("valid"))
    });
}

fn bench_lenet_inference(c: &mut Criterion) {
    let mut net = models::lenet(1).expect("builds");
    let data = synth_digits(16, 1).expect("dataset");
    let (x, _) = data.full_batch().expect("batch");
    c.bench_function("lenet_forward_batch16", |b| {
        b.iter(|| net.forward(std::hint::black_box(&x)).expect("valid"))
    });
}

fn bench_digit_generation(c: &mut Criterion) {
    c.bench_function("synth_digits_100", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            synth_digits(100, std::hint::black_box(seed)).expect("dataset")
        })
    });
}

criterion_group!(
    benches,
    bench_dense_forward,
    bench_conv_forward,
    bench_lenet_inference,
    bench_digit_generation
);
criterion_main!(benches);
