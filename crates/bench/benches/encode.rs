//! Criterion bench: single-spiking encode/decode throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::config::ResipeConfig;
use resipe::gd::GlobalDecoder;
use resipe::spike::SpikeCodec;
use resipe_analog::units::Seconds;

fn bench_codec(c: &mut Criterion) {
    let codec = SpikeCodec::new(ResipeConfig::paper()).expect("valid");
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<f64> = (0..1024).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("spike_encode_1024", |b| {
        b.iter(|| {
            codec
                .encode_all(std::hint::black_box(&values))
                .expect("valid")
        })
    });
    let spikes = codec.encode_all(&values).expect("valid");
    c.bench_function("spike_decode_1024", |b| {
        b.iter(|| codec.decode_all(std::hint::black_box(&spikes)))
    });
}

fn bench_ramp(c: &mut Criterion) {
    let gd = GlobalDecoder::new(ResipeConfig::paper()).expect("valid");
    let mut rng = StdRng::seed_from_u64(2);
    let times: Vec<Seconds> = (0..1024)
        .map(|_| Seconds(rng.gen_range(0.0..100e-9)))
        .collect();
    c.bench_function("gd_ramp_sample_1024", |b| {
        b.iter(|| {
            times
                .iter()
                .map(|&t| gd.ramp_voltage(std::hint::black_box(t)).expect("in slice"))
                .fold(0.0, |acc, v| acc + v.0)
        })
    });
}

criterion_group!(benches, bench_codec, bench_ramp);
criterion_main!(benches);
