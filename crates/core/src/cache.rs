//! LRU cache of compiled hardware networks.
//!
//! Compiling a [`crate::inference::HardwareNetwork`] is expensive: the
//! calibration batch runs through the ideal network, every weight matrix
//! is tiled onto differential crossbar pairs, and the full non-ideality
//! chain (variation, faults, repair, readout) is applied per tile.
//! Parameter sweeps — `fault_sweep` arms, `fig7` trials, repeated
//! benchmark configurations — often request the *same* compile many
//! times. [`CompileCache`] memoizes compiles behind a fingerprint of
//! `(model, calibration batch, CompileOptions)` with least-recently-used
//! eviction, so a repeated request costs one clone instead of a compile.
//!
//! Correctness rests on compiles being deterministic: the per-tile seed
//! substreams (see [`crate::seeds`]) make a compiled instance a pure
//! function of exactly the fingerprinted inputs, so a cache hit is
//! observationally identical to a fresh compile (up to the MVM counter,
//! which starts at zero on every returned clone).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use resipe_nn::layers::Layer;
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;

use crate::error::ResipeError;
use crate::inference::{CompileOptions, HardwareNetwork};
use crate::telemetry::{Counter, Telemetry};

/// An LRU cache of compiled networks keyed by
/// `(model, calibration, options)` fingerprint.
#[derive(Debug)]
pub struct CompileCache {
    capacity: usize,
    /// Entries ordered least-recently-used first.
    entries: Vec<(u64, HardwareNetwork)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Recorder hit/miss counters and compile spans report into;
    /// networks compiled through the cache carry this handle.
    telemetry: Telemetry,
}

impl CompileCache {
    /// Creates a cache holding at most `capacity` compiled networks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> CompileCache {
        assert!(capacity > 0, "cache capacity must be at least 1");
        CompileCache {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry recorder: hits and misses advance the
    /// `compile_cache_*` counters, fresh compiles record their span
    /// hierarchy, and every returned network (cached or fresh) carries
    /// the handle so its runs report into the same sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> CompileCache {
        self.telemetry = telemetry;
        self
    }

    /// The fingerprint a compile request is keyed by: the network's name,
    /// every layer's configuration and exact parameter bits, the exact
    /// calibration batch (it fixes the activation scales), and the full
    /// [`CompileOptions`] (via its lossless `Debug` form — `f64`'s `Debug`
    /// is the shortest round-trip representation).
    pub fn fingerprint(net: &Network, calibration: &Tensor, options: &CompileOptions) -> u64 {
        let mut h = DefaultHasher::new();
        net.name().hash(&mut h);
        for layer in net.layers() {
            std::mem::discriminant(layer).hash(&mut h);
            match layer {
                Layer::Dense(d) => {
                    hash_tensor(d.weights(), &mut h);
                    hash_tensor(d.bias(), &mut h);
                }
                Layer::Conv2d(c) => {
                    hash_tensor(c.weights(), &mut h);
                    hash_tensor(c.bias(), &mut h);
                    c.kernel_size().hash(&mut h);
                    c.padding().hash(&mut h);
                    c.out_channels().hash(&mut h);
                }
                Layer::MaxPool2d(p) => p.size().hash(&mut h),
                Layer::AvgPool2d(p) => p.size().hash(&mut h),
                Layer::Relu(_) | Layer::Flatten(_) => {}
            }
        }
        hash_tensor(calibration, &mut h);
        format!("{options:?}").hash(&mut h);
        h.finish()
    }

    /// Returns the compiled network for this request, compiling on a
    /// miss and cloning from the cache on a hit. The returned instance
    /// always has a fresh (zero) MVM counter.
    ///
    /// # Errors
    ///
    /// Propagates [`HardwareNetwork::compile`] errors (these are not
    /// cached).
    pub fn get_or_compile(
        &mut self,
        net: &Network,
        calibration: &Tensor,
        options: &CompileOptions,
    ) -> Result<HardwareNetwork, ResipeError> {
        let key = CompileCache::fingerprint(net, calibration, options);
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            self.telemetry.add(Counter::CompileCacheHits, 1);
            // Move to most-recently-used.
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return Ok(self.entries.last().expect("just pushed").1.clone());
        }
        self.misses += 1;
        self.telemetry.add(Counter::CompileCacheMisses, 1);
        let hw = HardwareNetwork::compile_with_telemetry(
            net,
            calibration,
            options,
            self.telemetry.clone(),
        )?;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
            self.telemetry.add(Counter::CompileCacheEvictions, 1);
        }
        self.entries.push((key, hw.clone()));
        Ok(hw)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (fresh compiles) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Compiled networks evicted under LRU pressure so far. Also
    /// reported into the attached telemetry recorder's
    /// `compile_cache_evictions` counter, so a serving layer's stats
    /// endpoint can surface cache pressure without holding the cache.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Maximum compiled networks held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Compiled networks currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

fn hash_tensor(t: &Tensor, h: &mut DefaultHasher) {
    t.shape().hash(h);
    for v in t.data() {
        v.to_bits().hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resipe_nn::data::synth_digits;
    use resipe_nn::models;
    use resipe_nn::train::{Sgd, TrainConfig};

    fn setup() -> (Network, Tensor) {
        let train = synth_digits(80, 1).unwrap();
        let mut net = models::mlp1(7).unwrap();
        Sgd::new(TrainConfig::new(1).with_learning_rate(0.1))
            .fit(&mut net, &train)
            .unwrap();
        let (calib, _) = train.batch(&[0, 1, 2, 3]).unwrap();
        (net, calib)
    }

    #[test]
    fn hit_returns_identical_network() {
        let (net, calib) = setup();
        let opts = CompileOptions::paper()
            .with_variation(resipe_reram::VariationModel::device_to_device(0.1).unwrap())
            .with_seed(3);
        let mut cache = CompileCache::new(4);
        let a = cache.get_or_compile(&net, &calib, &opts).unwrap();
        let b = cache.get_or_compile(&net, &calib, &opts).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        let (x, _) = synth_digits(8, 5).unwrap().batch(&[0, 1, 2]).unwrap();
        assert_eq!(
            a.forward(&x).unwrap(),
            b.forward(&x).unwrap(),
            "cached clone must behave identically"
        );
        assert_eq!(b.mvm_count(), 3 * 50, "clone counts its own MVMs");
    }

    #[test]
    fn distinct_options_miss() {
        let (net, calib) = setup();
        let mut cache = CompileCache::new(4);
        for seed in 0..3 {
            cache
                .get_or_compile(&net, &calib, &CompileOptions::paper().with_seed(seed))
                .unwrap();
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (net, calib) = setup();
        let mut cache = CompileCache::new(2);
        let o = |seed| CompileOptions::paper().with_seed(seed);
        cache.get_or_compile(&net, &calib, &o(0)).unwrap();
        cache.get_or_compile(&net, &calib, &o(1)).unwrap();
        // Touch seed 0 so seed 1 is the LRU entry, then insert seed 2.
        cache.get_or_compile(&net, &calib, &o(0)).unwrap();
        cache.get_or_compile(&net, &calib, &o(2)).unwrap();
        assert_eq!(cache.len(), 2);
        // Seed 0 survives (hit), seed 1 was evicted (miss).
        let hits_before = cache.hits();
        cache.get_or_compile(&net, &calib, &o(0)).unwrap();
        assert_eq!(cache.hits(), hits_before + 1);
        let misses_before = cache.misses();
        cache.get_or_compile(&net, &calib, &o(1)).unwrap();
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn eviction_counter_and_capacity() {
        let (net, calib) = setup();
        let telemetry = Telemetry::enabled();
        let mut cache = CompileCache::new(2).with_telemetry(telemetry.clone());
        assert_eq!(cache.capacity(), 2);
        let o = |seed| CompileOptions::paper().with_seed(seed);
        cache.get_or_compile(&net, &calib, &o(0)).unwrap();
        cache.get_or_compile(&net, &calib, &o(1)).unwrap();
        assert_eq!(cache.evictions(), 0, "filling to capacity evicts nothing");
        cache.get_or_compile(&net, &calib, &o(2)).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), cache.capacity());
        // Cache pressure is observable without holding the cache: the
        // telemetry counter tracks the eviction count exactly.
        assert_eq!(telemetry.snapshot().counters.compile_cache_evictions, 1);
    }

    #[test]
    fn telemetry_counts_hits_and_misses() {
        let (net, calib) = setup();
        let telemetry = Telemetry::enabled();
        let mut cache = CompileCache::new(4).with_telemetry(telemetry.clone());
        let opts = CompileOptions::paper();
        let a = cache.get_or_compile(&net, &calib, &opts).unwrap();
        let b = cache.get_or_compile(&net, &calib, &opts).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters.compile_cache_misses, 1);
        assert_eq!(snap.counters.compile_cache_hits, 1);
        assert!(snap.span("compile").is_some(), "fresh compile records span");
        // Both the fresh and the cached network report into the sink.
        assert!(a.telemetry().is_enabled());
        assert!(b.telemetry().is_enabled());
    }

    #[test]
    fn calibration_is_part_of_the_key() {
        let (net, calib) = setup();
        let other = {
            let train = synth_digits(80, 1).unwrap();
            let (c, _) = train.batch(&[4, 5, 6, 7]).unwrap();
            c
        };
        let opts = CompileOptions::paper();
        let mut cache = CompileCache::new(4);
        cache.get_or_compile(&net, &calib, &opts).unwrap();
        cache.get_or_compile(&net, &other, &opts).unwrap();
        assert_eq!(cache.misses(), 2, "different calibration must re-compile");
    }
}
