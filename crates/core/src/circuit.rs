//! Netlist-level model of the single-spiking MAC (paper Fig. 2 / Fig. 3).
//!
//! This module rebuilds the ReSiPE datapath as an RC circuit on the
//! [`resipe_analog`] MNA transient simulator — the stand-in for the
//! paper's Cadence Virtuoso runs. It serves two purposes:
//!
//! * **validation** — the closed-form [`crate::engine::ResipeEngine`] is
//!   checked against this circuit (see the tests below and the
//!   `engine_vs_circuit` integration test);
//! * **Fig. 3 reproduction** — the `fig3` bench binary dumps the captured
//!   waveforms (S1 ramp + sample-and-hold, computation-stage `V(C_cog)`,
//!   S2 ramp/comparator crossing).
//!
//! The circuit timeline per the paper:
//!
//! | window | ramp (`C_gd`) | crossbar switches | `C_cog` |
//! |---|---|---|---|
//! | S1 `[0, T−Δt)` | charging | open | held reset (0 V) |
//! | comp `[T−Δt, T)` | discharged by `M_gd` | closed (held voltages drive column) | charging |
//! | S2 `[T, 2T)` | recharging from 0 | open | holds `V_out` |

use resipe_analog::netlist::{Netlist, Node, SwitchState};
use resipe_analog::transient::{
    SolverKind, SolverSession, SolverStats, StepView, Transient, TransientConfig,
};
use resipe_analog::units::{Joules, Ohms, Seconds, Siemens, Volts};
use resipe_analog::waveform::{Edge, Waveform};

use crate::config::ResipeConfig;
use crate::error::ResipeError;

/// On-resistance used for the ideal reset/discharge/compute switches.
const SWITCH_R_ON: Ohms = Ohms(10.0);
/// Off-resistance of the switches (effectively open).
const SWITCH_R_OFF: Ohms = Ohms(1e15);

/// An M-input single-spiking MAC rendered as an RC netlist.
#[derive(Debug, Clone)]
pub struct AnalogMac {
    config: ResipeConfig,
    conductances: Vec<Siemens>,
}

/// Waveforms and extracted quantities from one analog MAC run.
#[derive(Debug, Clone)]
pub struct AnalogMacResult {
    /// The output spike time, measured from the start of S2.
    pub t_out: Seconds,
    /// The bitline voltage held on `C_cog` at the end of the computation
    /// stage.
    pub v_out: Volts,
    /// `true` if the S2 ramp never crossed `V_out` within the slice.
    pub saturated: bool,
    /// The `V(C_gd)` ramp across both slices.
    pub ramp: Waveform,
    /// The `V(C_cog)` bitline voltage across both slices.
    pub cog: Waveform,
    /// The sample-and-hold outputs, one per input.
    pub held: Vec<Waveform>,
    /// Total energy delivered by all sources over the run.
    pub source_energy: Joules,
}

impl AnalogMac {
    /// Builds the circuit model for the given column conductances.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] for an invalid engine
    /// configuration, non-positive conductances, or an empty column.
    pub fn new(config: ResipeConfig, conductances: &[Siemens]) -> Result<AnalogMac, ResipeError> {
        config.validate()?;
        if conductances.is_empty() {
            return Err(ResipeError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        for g in conductances {
            if !(g.0 > 0.0) || !g.0.is_finite() {
                return Err(ResipeError::InvalidConfig {
                    reason: format!("cell conductance must be positive, got {g}"),
                });
            }
        }
        Ok(AnalogMac {
            config,
            conductances: conductances.to_vec(),
        })
    }

    /// Runs a full two-slice transient with the given input spike times and
    /// integration step.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::SpikeOutOfSlice`] for inputs outside the
    /// slice, [`ResipeError::DimensionMismatch`] for a count mismatch, or
    /// analog-substrate errors.
    pub fn run(&self, t_in: &[Seconds], step: Seconds) -> Result<AnalogMacResult, ResipeError> {
        if t_in.len() != self.conductances.len() {
            return Err(ResipeError::DimensionMismatch {
                expected: self.conductances.len(),
                got: t_in.len(),
            });
        }
        let slice = self.config.slice();
        for t in t_in {
            if t.0 < 0.0 || t.0 > slice.0 {
                return Err(ResipeError::SpikeOutOfSlice {
                    time: t.0,
                    slice: slice.0,
                });
            }
        }

        // ---- Build the netlist (Fig. 2). ----
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        net.voltage_source(Node::GROUND, vdd, self.config.vs());
        let ramp = net.node("ramp");
        net.resistor(vdd, ramp, self.config.r_gd());
        net.capacitor(ramp, Node::GROUND, self.config.c_gd());
        // M_gd: discharges the ramp during the computation stage.
        let ramp_discharge = net.switch(ramp, Node::GROUND, SWITCH_R_ON, SWITCH_R_OFF);

        let cog = net.node("cog");
        net.capacitor(cog, Node::GROUND, self.config.c_cog());
        // RST2: holds C_cog at 0 V outside the computation stage of S1.
        let cog_reset = net.switch(cog, Node::GROUND, SWITCH_R_ON, SWITCH_R_OFF);

        // Per input: an S/H output source, a compute switch, and the cell.
        let mut held_nodes = Vec::new();
        let mut held_sources = Vec::new();
        let mut compute_switches = Vec::new();
        for (i, g) in self.conductances.iter().enumerate() {
            let held = net.node(&format!("held{i}"));
            let src = net.voltage_source(Node::GROUND, held, Volts(0.0));
            let mid = net.node(&format!("wl{i}"));
            let sw = net.switch(held, mid, SWITCH_R_ON, SWITCH_R_OFF);
            net.resistor(mid, cog, g.recip());
            held_nodes.push(held);
            held_sources.push(src);
            compute_switches.push(sw);
        }

        self.run_inner(
            net,
            ramp,
            cog,
            held_nodes,
            held_sources,
            compute_switches,
            ramp_discharge,
            cog_reset,
            t_in,
            step,
        )
    }

    /// The actual transient run; separated so the controller closure can
    /// capture node/source handles cleanly.
    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        net: Netlist,
        ramp: Node,
        cog: Node,
        held_nodes: Vec<Node>,
        held_sources: Vec<resipe_analog::netlist::VSourceId>,
        compute_switches: Vec<resipe_analog::netlist::SwitchId>,
        ramp_discharge: resipe_analog::netlist::SwitchId,
        cog_reset: resipe_analog::netlist::SwitchId,
        t_in: &[Seconds],
        step: Seconds,
    ) -> Result<AnalogMacResult, ResipeError> {
        let slice = self.config.slice();
        let comp_start = slice.0 - self.config.dt().0;
        let s2_start = slice.0;
        let total = Seconds(2.0 * slice.0);

        let spike_times: Vec<f64> = t_in.iter().map(|t| t.0).collect();
        let mut sampled = vec![false; spike_times.len()];
        let mut phase = 0u8; // 0 = S1, 1 = comp, 2 = S2
        let mut reset_applied = false;

        let controller = move |view: &StepView<'_>, net: &mut Netlist| -> bool {
            let t = view.time.0;
            let mut dirty = false;
            if !reset_applied {
                // Hold C_cog at 0 during S1.
                net.set_switch(cog_reset, SwitchState::Closed);
                reset_applied = true;
                dirty = true;
            }
            if phase == 0 {
                // Sample-and-hold each input at its spike arrival.
                for (i, (&ts, done)) in spike_times.iter().zip(sampled.iter_mut()).enumerate() {
                    if !*done && t >= ts {
                        net.set_voltage(held_sources[i], view.voltage(ramp));
                        *done = true;
                        dirty = true;
                    }
                }
                if t >= comp_start {
                    // Enter the computation stage: discharge the ramp,
                    // release C_cog, connect the held voltages.
                    net.set_switch(ramp_discharge, SwitchState::Closed);
                    net.set_switch(cog_reset, SwitchState::Open);
                    for &sw in &compute_switches {
                        net.set_switch(sw, SwitchState::Closed);
                    }
                    phase = 1;
                    dirty = true;
                }
            } else if phase == 1 && t >= s2_start {
                // Enter S2: recharge the ramp, isolate C_cog.
                net.set_switch(ramp_discharge, SwitchState::Open);
                for &sw in &compute_switches {
                    net.set_switch(sw, SwitchState::Open);
                }
                phase = 2;
                dirty = true;
            }
            dirty
        };

        let cfg = TransientConfig::new(total).with_step(step);
        let result = Transient::new(&net, cfg)?.run_with(controller)?;

        let ramp_wave = result.waveform(ramp)?.clone();
        let cog_wave = result.waveform(cog)?.clone();
        let held_waves: Vec<Waveform> = held_nodes
            .iter()
            .map(|&n| result.waveform(n).cloned())
            .collect::<Result<_, _>>()?;

        // V_out: the C_cog voltage at the start of S2 (end of computation).
        let v_out = cog_wave
            .sample(Seconds(s2_start))
            .map(|v| Volts(v.0))
            .unwrap_or(Volts(0.0));

        // Output spike: first S2 time where the ramp crosses V_out. If the
        // ramp already sits at/above the threshold when S2 begins (V_out ≈
        // 0 for silent columns), the comparator fires immediately.
        let crossing = ramp_wave.crossing(v_out, Edge::Rising, Seconds(s2_start + step.0));
        let ramp_at_s2 = ramp_wave
            .sample(Seconds(s2_start + 2.0 * step.0))
            .map(|v| v.0)
            .unwrap_or(0.0);
        let (t_out, saturated) = match crossing {
            Some(t) => (Seconds(t.0 - s2_start), false),
            None if ramp_at_s2 >= v_out.0 => (Seconds(0.0), false),
            None => (slice, true),
        };

        Ok(AnalogMacResult {
            t_out,
            v_out,
            saturated,
            ramp: ramp_wave,
            cog: cog_wave,
            held: held_waves,
            source_energy: result.total_source_energy(),
        })
    }
}

/// A full M×N single-spiking MVM rendered as one RC netlist: one shared
/// GD ramp and sample-and-hold bank driving N bitlines, each with its own
/// `C_cog` and comparator readout — the architecture of paper Fig. 4 at
/// netlist level.
///
/// Node count grows as `M + N + const` (plus `M·N` bitline-segment nodes
/// when [`AnalogMvm::with_wire_resistance`] is armed). The transient's
/// [`SolverKind::Auto`] seam keeps small crossbars on dense LU and routes
/// whole tiles to the sparse reusable-factorization path, which is what
/// makes the full 128×128 `engine_vs_circuit` oracle and the
/// `circuit_sweep` campaigns tractable; pass a [`SolverSession`] via
/// [`AnalogMvm::run_with_session`] to share one symbolic analysis across
/// a batch of structurally identical runs.
#[derive(Debug, Clone)]
pub struct AnalogMvm {
    config: ResipeConfig,
    /// Row-major effective conductances, `rows × cols`.
    conductances: Vec<Siemens>,
    rows: usize,
    cols: usize,
    solver: SolverKind,
    min_rcond: Option<f64>,
    wire_resistance: Option<Ohms>,
}

/// Per-column results of one analog MVM run.
#[derive(Debug, Clone)]
pub struct AnalogMvmResult {
    /// One MAC-style result per bitline.
    pub columns: Vec<AnalogMacResult>,
    /// Total energy delivered by all sources over the run.
    pub source_energy: Joules,
    /// Linear-solver counters of the underlying transient (backend kind,
    /// symbolic analyses, refactorizations, reused-factor solves).
    pub solver_stats: SolverStats,
}

impl AnalogMvm {
    /// Builds the crossbar circuit from a row-major conductance matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] for a shape mismatch or
    /// [`ResipeError::InvalidConfig`] for non-positive conductances.
    pub fn new(
        config: ResipeConfig,
        conductances: &[Siemens],
        rows: usize,
        cols: usize,
    ) -> Result<AnalogMvm, ResipeError> {
        config.validate()?;
        if conductances.len() != rows * cols || rows == 0 || cols == 0 {
            return Err(ResipeError::DimensionMismatch {
                expected: rows * cols,
                got: conductances.len(),
            });
        }
        for g in conductances {
            if !(g.0 > 0.0) || !g.0.is_finite() {
                return Err(ResipeError::InvalidConfig {
                    reason: format!("cell conductance must be positive, got {g}"),
                });
            }
        }
        Ok(AnalogMvm {
            config,
            conductances: conductances.to_vec(),
            rows,
            cols,
            solver: SolverKind::Auto,
            min_rcond: None,
            wire_resistance: None,
        })
    }

    /// Selects the linear-solver backend for the underlying transient
    /// (default: [`SolverKind::Auto`] — dense for small crossbars, sparse
    /// for whole tiles).
    pub fn with_solver(mut self, solver: SolverKind) -> AnalogMvm {
        self.solver = solver;
        self
    }

    /// Arms the transient's condition gate: the run fails with an
    /// actionable error instead of silently losing precision if the MNA
    /// system's estimated reciprocal condition drops below `min_rcond`.
    /// See `TransientConfig::with_min_rcond` for threshold guidance.
    pub fn with_min_rcond(mut self, min_rcond: f64) -> AnalogMvm {
        self.min_rcond = Some(min_rcond);
        self
    }

    /// Models bitline wire resistance: each column becomes an RC ladder
    /// with `ohms` per cell-to-cell segment (sense amplifier at the far
    /// end, so row 0's cell current crosses `rows` segments). `None`
    /// (the default) keeps the ideal zero-resistance bitline and exactly
    /// the original netlist topology.
    ///
    /// This is the circuit-fidelity counterpart of
    /// [`crate::parasitics`]'s analytical IR-drop model and the knob the
    /// `circuit_sweep` campaign sweeps.
    pub fn with_wire_resistance(mut self, ohms: Ohms) -> AnalogMvm {
        self.wire_resistance = Some(ohms);
        self
    }

    /// Runs the full two-slice transient.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::SpikeOutOfSlice`] /
    /// [`ResipeError::DimensionMismatch`] for bad inputs, or analog
    /// errors.
    pub fn run(&self, t_in: &[Seconds], step: Seconds) -> Result<AnalogMvmResult, ResipeError> {
        self.run_with_session(t_in, step, &mut SolverSession::new())
    }

    /// Runs the full two-slice transient, reusing `session`'s cached
    /// sparse symbolic analysis when the crossbar topology matches the
    /// previous run — the batched-sweep entry point: a sweep over
    /// conductances, spike times, `Vth`, or wire resistance *values* pays
    /// for symbolic analysis once across the whole batch.
    ///
    /// # Errors
    ///
    /// Same as [`AnalogMvm::run`].
    pub fn run_with_session(
        &self,
        t_in: &[Seconds],
        step: Seconds,
        session: &mut SolverSession,
    ) -> Result<AnalogMvmResult, ResipeError> {
        let slice = self.config.slice();
        if t_in.len() != self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: self.rows,
                got: t_in.len(),
            });
        }
        for t in t_in {
            if t.0 < 0.0 || t.0 > slice.0 {
                return Err(ResipeError::SpikeOutOfSlice {
                    time: t.0,
                    slice: slice.0,
                });
            }
        }

        // Shared GD ramp.
        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        net.voltage_source(Node::GROUND, vdd, self.config.vs());
        let ramp = net.node("ramp");
        net.resistor(vdd, ramp, self.config.r_gd());
        net.capacitor(ramp, Node::GROUND, self.config.c_gd());
        let ramp_discharge = net.switch(ramp, Node::GROUND, SWITCH_R_ON, SWITCH_R_OFF);

        // Bitlines.
        let mut cog_nodes = Vec::with_capacity(self.cols);
        let mut cog_resets = Vec::with_capacity(self.cols);
        for j in 0..self.cols {
            let cog = net.node(&format!("cog{j}"));
            net.capacitor(cog, Node::GROUND, self.config.c_cog());
            cog_resets.push(net.switch(cog, Node::GROUND, SWITCH_R_ON, SWITCH_R_OFF));
            cog_nodes.push(cog);
        }

        // Wordlines: one held source per row, fanning out through the
        // row's cells to every bitline. Each cell is modelled as a
        // two-state resistor (its 1T1R access transistor in series):
        // conducting at the cell resistance during the computation stage,
        // open otherwise — which is also what prevents bitline-to-bitline
        // sneak paths while `C_cog` holds its value through S2.
        // Optional bitline wire ladder: cell (i, j) taps column j's wire
        // at segment node `bl(i, j)`, and the sense end (`C_cog`) hangs
        // off the far end, so row 0's current crosses all `rows` wire
        // segments. Without wire resistance every cell taps the `cog`
        // node directly — exactly the original ideal topology.
        let cell_taps: Vec<Vec<Node>> = match self.wire_resistance {
            None => (0..self.rows).map(|_| cog_nodes.clone()).collect(),
            Some(r_seg) => {
                let mut taps = vec![Vec::with_capacity(self.cols); self.rows];
                for (j, &cog) in cog_nodes.iter().enumerate() {
                    let mut toward_sense = cog;
                    for i in (0..self.rows).rev() {
                        let bl = net.node(&format!("bl{i}_{j}"));
                        net.resistor(bl, toward_sense, r_seg);
                        taps[i].push(bl);
                        toward_sense = bl;
                    }
                }
                // The inner loop walked rows in reverse but columns in
                // order, so taps[i][j] is already correctly indexed.
                taps
            }
        };

        let mut held_sources = Vec::with_capacity(self.rows);
        let mut cell_switches = Vec::with_capacity(self.rows * self.cols);
        for (i, row_taps) in cell_taps.iter().enumerate() {
            let held = net.node(&format!("held{i}"));
            held_sources.push(net.voltage_source(Node::GROUND, held, Volts(0.0)));
            for (j, &tap) in row_taps.iter().enumerate() {
                let r_cell = self.conductances[i * self.cols + j].recip();
                cell_switches.push(net.switch(held, tap, r_cell, SWITCH_R_OFF));
            }
        }

        let comp_start = slice.0 - self.config.dt().0;
        let s2_start = slice.0;
        let spike_times: Vec<f64> = t_in.iter().map(|t| t.0).collect();
        let mut sampled = vec![false; spike_times.len()];
        let mut phase = 0u8;
        let mut reset_applied = false;
        let cog_resets_c = cog_resets.clone();
        let controller = move |view: &StepView<'_>, net: &mut Netlist| -> bool {
            let t = view.time.0;
            let mut dirty = false;
            if !reset_applied {
                for &r in &cog_resets_c {
                    net.set_switch(r, SwitchState::Closed);
                }
                reset_applied = true;
                dirty = true;
            }
            if phase == 0 {
                for (i, (&ts, done)) in spike_times.iter().zip(sampled.iter_mut()).enumerate() {
                    if !*done && t >= ts {
                        net.set_voltage(held_sources[i], view.voltage(ramp));
                        *done = true;
                        dirty = true;
                    }
                }
                if t >= comp_start {
                    net.set_switch(ramp_discharge, SwitchState::Closed);
                    for &r in &cog_resets_c {
                        net.set_switch(r, SwitchState::Open);
                    }
                    for &sw in &cell_switches {
                        net.set_switch(sw, SwitchState::Closed);
                    }
                    phase = 1;
                    dirty = true;
                }
            } else if phase == 1 && t >= s2_start {
                net.set_switch(ramp_discharge, SwitchState::Open);
                for &sw in &cell_switches {
                    net.set_switch(sw, SwitchState::Open);
                }
                phase = 2;
                dirty = true;
            }
            dirty
        };

        let mut cfg = TransientConfig::new(Seconds(2.0 * slice.0))
            .with_step(step)
            .with_solver(self.solver);
        if let Some(r) = self.min_rcond {
            cfg = cfg.with_min_rcond(r);
        }
        let result = Transient::new(&net, cfg)?.run_with_session(controller, session)?;

        let ramp_wave = result.waveform(ramp)?;
        let ramp_at_s2 = ramp_wave
            .sample(Seconds(s2_start + 2.0 * step.0))
            .map(|v| v.0)
            .unwrap_or(0.0);
        let mut columns = Vec::with_capacity(self.cols);
        for &cog in &cog_nodes {
            let cog_wave = result.waveform(cog)?;
            let v_out = cog_wave
                .sample(Seconds(s2_start))
                .map(|v| Volts(v.0))
                .unwrap_or(Volts(0.0));
            let crossing = ramp_wave.crossing(v_out, Edge::Rising, Seconds(s2_start + step.0));
            let (t_out, saturated) = match crossing {
                Some(t) => (Seconds(t.0 - s2_start), false),
                None if ramp_at_s2 >= v_out.0 => (Seconds(0.0), false),
                None => (slice, true),
            };
            columns.push(AnalogMacResult {
                t_out,
                v_out,
                saturated,
                ramp: ramp_wave.clone(),
                cog: cog_wave.clone(),
                held: Vec::new(),
                source_energy: Joules(0.0),
            });
        }
        Ok(AnalogMvmResult {
            columns,
            source_energy: result.total_source_energy(),
            solver_stats: result.solver_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ResipeEngine;

    const STEP: Seconds = Seconds(20e-12);

    #[test]
    fn circuit_matches_engine_two_inputs() {
        let cfg = ResipeConfig::paper();
        let g = [Siemens(100e-6), Siemens(50e-6)];
        let t_in = [Seconds(20e-9), Seconds(50e-9)];
        let analog = AnalogMac::new(cfg, &g).unwrap().run(&t_in, STEP).unwrap();
        let engine = ResipeEngine::new(cfg).mac(&t_in, &g).unwrap();
        assert!(!analog.saturated);
        let dv = (analog.v_out.0 - engine.v_out.0).abs();
        assert!(
            dv < 5e-3,
            "v_out analog {} vs engine {}",
            analog.v_out,
            engine.v_out
        );
        let dt_rel = (analog.t_out.0 - engine.t_out.0).abs() / engine.t_out.0.max(1e-12);
        assert!(
            dt_rel < 0.02,
            "t_out analog {} ns vs engine {} ns",
            analog.t_out.as_nanos(),
            engine.t_out.as_nanos()
        );
    }

    #[test]
    fn ramp_discharges_during_computation() {
        let cfg = ResipeConfig::paper();
        let analog = AnalogMac::new(cfg, &[Siemens(1e-4)])
            .unwrap()
            .run(&[Seconds(30e-9)], STEP)
            .unwrap();
        // Just before the computation stage the ramp is near its S1 peak;
        // at the start of S2 it has been discharged to ~0.
        let near_peak = analog.ramp.sample(Seconds(98e-9)).unwrap().0;
        let at_s2 = analog.ramp.sample(Seconds(100.2e-9)).unwrap().0;
        assert!(near_peak > 0.9, "peak {near_peak}");
        assert!(at_s2 < 0.1, "discharged {at_s2}");
    }

    #[test]
    fn cog_holds_vout_through_s2() {
        let cfg = ResipeConfig::paper();
        let analog = AnalogMac::new(cfg, &[Siemens(2e-4)])
            .unwrap()
            .run(&[Seconds(40e-9)], STEP)
            .unwrap();
        let at_start = analog.cog.sample(Seconds(100.5e-9)).unwrap().0;
        let at_end = analog.cog.sample(Seconds(199e-9)).unwrap().0;
        assert!(at_start > 0.1, "charged to {at_start}");
        assert!(
            (at_end - at_start).abs() / at_start < 0.05,
            "held {at_start} -> {at_end}"
        );
    }

    #[test]
    fn held_sources_track_sample_times() {
        let cfg = ResipeConfig::paper();
        let analog = AnalogMac::new(cfg, &[Siemens(1e-4), Siemens(1e-4)])
            .unwrap()
            .run(&[Seconds(10e-9), Seconds(60e-9)], STEP)
            .unwrap();
        // Before its spike, a held source is 0; after, it equals the ramp
        // value at the spike time.
        let h0_before = analog.held[0].sample(Seconds(5e-9)).unwrap().0;
        let h0_after = analog.held[0].sample(Seconds(50e-9)).unwrap().0;
        assert!(h0_before.abs() < 1e-6);
        let expected = 1.0 - (-10e-9_f64 / 10e-9).exp(); // V(10 ns), τ = 10 ns
        assert!(
            (h0_after - expected).abs() < 0.01,
            "held {h0_after} vs {expected}"
        );
        let h1_after = analog.held[1].sample(Seconds(80e-9)).unwrap().0;
        let expected1 = 1.0 - (-60e-9_f64 / 10e-9).exp();
        assert!((h1_after - expected1).abs() < 0.01);
    }

    #[test]
    fn input_validation() {
        let cfg = ResipeConfig::paper();
        assert!(AnalogMac::new(cfg, &[]).is_err());
        assert!(AnalogMac::new(cfg, &[Siemens(0.0)]).is_err());
        let mac = AnalogMac::new(cfg, &[Siemens(1e-4)]).unwrap();
        assert!(mac.run(&[Seconds(200e-9)], STEP).is_err());
        assert!(mac.run(&[Seconds(1e-9), Seconds(2e-9)], STEP).is_err());
    }

    #[test]
    fn source_energy_is_positive() {
        let cfg = ResipeConfig::paper();
        let analog = AnalogMac::new(cfg, &[Siemens(1e-4)])
            .unwrap()
            .run(&[Seconds(30e-9)], STEP)
            .unwrap();
        assert!(analog.source_energy.0 > 0.0);
    }

    #[test]
    fn full_crossbar_matches_engine_per_column() {
        let cfg = ResipeConfig::paper();
        let (rows, cols) = (4, 3);
        let g: Vec<Siemens> = (0..rows * cols)
            .map(|i| Siemens(20e-6 + 10e-6 * (i % 5) as f64))
            .collect();
        let t_in = [
            Seconds(15e-9),
            Seconds(35e-9),
            Seconds(55e-9),
            Seconds(75e-9),
        ];
        let analog = AnalogMvm::new(cfg, &g, rows, cols)
            .unwrap()
            .run(&t_in, STEP)
            .unwrap();
        assert_eq!(analog.columns.len(), cols);
        let g_flat: Vec<f64> = g.iter().map(|g| g.0).collect();
        let engine = ResipeEngine::new(cfg)
            .mvm_matrix(&g_flat, rows, cols, &t_in)
            .unwrap();
        for (j, (a, e)) in analog.columns.iter().zip(&engine).enumerate() {
            let dv = (a.v_out.0 - e.v_out.0).abs();
            assert!(dv < 0.01, "col {j}: v_out {} vs {}", a.v_out, e.v_out);
            let rel = (a.t_out.0 - e.t_out.0).abs() / e.t_out.0.max(1e-10);
            assert!(
                rel < 0.05,
                "col {j}: t_out {} ns vs {} ns",
                a.t_out.as_nanos(),
                e.t_out.as_nanos()
            );
        }
        assert!(analog.source_energy.0 > 0.0);
    }

    #[test]
    fn crossbar_columns_are_isolated_in_s2() {
        // Two columns with very different conductances: each must hold its
        // own V_out through S2 (the 1T1R access gating blocks bitline-to-
        // bitline sneak paths).
        let cfg = ResipeConfig::paper();
        let g = [
            Siemens(200e-6),
            Siemens(5e-6),
            Siemens(200e-6),
            Siemens(5e-6),
        ]; // 2x2: col0 strong, col1 weak
        let analog = AnalogMvm::new(cfg, &g, 2, 2)
            .unwrap()
            .run(&[Seconds(60e-9), Seconds(60e-9)], STEP)
            .unwrap();
        let c0 = &analog.columns[0];
        let c1 = &analog.columns[1];
        assert!(
            c0.v_out.0 > 3.0 * c1.v_out.0,
            "{} vs {}",
            c0.v_out,
            c1.v_out
        );
        // Each cog holds through S2 within a few percent.
        for c in [c0, c1] {
            let start = c.cog.sample(Seconds(101e-9)).unwrap().0;
            let end = c.cog.sample(Seconds(199e-9)).unwrap().0;
            assert!(
                (end - start).abs() <= 0.05 * start.max(1e-3),
                "cog drift {start} -> {end}"
            );
        }
    }

    #[test]
    fn forced_sparse_backend_matches_dense_mvm() {
        let cfg = ResipeConfig::paper();
        let g: Vec<Siemens> = (0..6).map(|i| Siemens(30e-6 + 15e-6 * i as f64)).collect();
        let t_in = [Seconds(20e-9), Seconds(45e-9)];
        let run = |solver| {
            AnalogMvm::new(cfg, &g, 2, 3)
                .unwrap()
                .with_solver(solver)
                .run(&t_in, STEP)
                .unwrap()
        };
        let dense = run(SolverKind::Dense);
        let sparse = run(SolverKind::Sparse);
        assert_eq!(dense.solver_stats.backend, SolverKind::Dense);
        assert_eq!(sparse.solver_stats.backend, SolverKind::Sparse);
        for (d, s) in dense.columns.iter().zip(&sparse.columns) {
            assert!((d.v_out.0 - s.v_out.0).abs() < 1e-9);
            assert!((d.t_out.0 - s.t_out.0).abs() < 1e-15);
            assert_eq!(d.saturated, s.saturated);
        }
        assert!((dense.source_energy.0 - sparse.source_energy.0).abs() < 1e-18);
    }

    #[test]
    fn session_shares_symbolic_analysis_across_mvm_runs() {
        let cfg = ResipeConfig::paper();
        let g = vec![Siemens(50e-6); 4];
        let mvm = AnalogMvm::new(cfg, &g, 2, 2)
            .unwrap()
            .with_solver(SolverKind::Sparse);
        let mut session = SolverSession::new();
        // Quantized spike times keep the sample-and-hold event count equal
        // across runs; only values differ.
        for t in [20e-9, 40e-9, 60e-9] {
            mvm.run_with_session(&[Seconds(t), Seconds(t)], STEP, &mut session)
                .unwrap();
        }
        let totals = session.stats();
        assert_eq!(totals.symbolic_analyses, 1, "{totals:?}");
        assert_eq!(totals.symbolic_reuses, 2, "{totals:?}");
        assert!(totals.numeric_refactors >= 2, "{totals:?}");
        assert!(totals.reused_factor_solves > totals.numeric_refactors * 100);
    }

    #[test]
    fn wire_resistance_causes_ir_drop() {
        let cfg = ResipeConfig::paper();
        // Strong cells so bitline current (and thus IR drop) is visible.
        let g = vec![Siemens(200e-6); 8 * 2];
        let t_in = vec![Seconds(20e-9); 8];
        let ideal = AnalogMvm::new(cfg, &g, 8, 2)
            .unwrap()
            .run(&t_in, STEP)
            .unwrap();
        let wired = AnalogMvm::new(cfg, &g, 8, 2)
            .unwrap()
            .with_wire_resistance(Ohms(50.0))
            .run(&t_in, STEP)
            .unwrap();
        for (i, (w, id)) in wired.columns.iter().zip(&ideal.columns).enumerate() {
            assert!(
                w.v_out.0 < id.v_out.0,
                "col {i}: wire {} should sit below ideal {}",
                w.v_out,
                id.v_out
            );
            // 50 Ω segments against 5 kΩ cells: a few percent, not a
            // collapse.
            assert!(
                w.v_out.0 > 0.8 * id.v_out.0,
                "col {i}: wire drop too large ({} vs {})",
                w.v_out,
                id.v_out
            );
        }
    }

    #[test]
    fn mvm_min_rcond_gate_passes_healthy_tile() {
        let cfg = ResipeConfig::paper();
        let g = vec![Siemens(50e-6); 4];
        let res = AnalogMvm::new(cfg, &g, 2, 2)
            .unwrap()
            .with_solver(SolverKind::Sparse)
            .with_min_rcond(1e-20)
            .run(&[Seconds(20e-9), Seconds(40e-9)], STEP)
            .unwrap();
        let rc = res.solver_stats.min_rcond_seen.expect("gate armed");
        assert!(rc >= 1e-20, "healthy tile rcond {rc}");
    }

    #[test]
    fn analog_mvm_validation() {
        let cfg = ResipeConfig::paper();
        assert!(AnalogMvm::new(cfg, &[Siemens(1e-5); 3], 2, 2).is_err());
        assert!(AnalogMvm::new(cfg, &[Siemens(-1.0); 4], 2, 2).is_err());
        let mvm = AnalogMvm::new(cfg, &[Siemens(1e-5); 4], 2, 2).unwrap();
        assert!(mvm.run(&[Seconds(1e-9)], STEP).is_err());
        assert!(mvm.run(&[Seconds(1e-9), Seconds(200e-9)], STEP).is_err());
    }
}
