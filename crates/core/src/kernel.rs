//! Pluggable MVM kernel backends for the batched execution engine.
//!
//! A *kernel backend* is the strategy that turns one tile's held
//! wordline voltages into the per-column sampled bitline voltages
//! `(V_out⁺, V_out⁻)` inside [`BatchPlan`]'s blocked forward pass.
//! Everything around that seam — the S1 encode, the charge division
//! `V_eq (1 − e^(−Δt ΣG / C_cog))`, the S2 comparator decode, telemetry
//! staging — is shared by every backend, so a backend swaps only the
//! weighted-sum arithmetic of the computation stage.
//!
//! Three backends ship (see `DESIGN.md` § "Kernel backends" for the full
//! written contract, including what a fourth backend must uphold):
//!
//! * [`Backend::Scalar`] — the bit-exact reference: the sparse
//!   column-major walk of [`BatchPlan::forward_block`], identical to the
//!   per-sample [`MappedWeights::forward`](crate::mapping::MappedWeights::forward)
//!   sequence.
//! * [`Backend::VectorF32`] — an explicitly unrolled lane kernel with a
//!   **fixed reduction order**: lanes map to the *sample* dimension
//!   (never the row-reduction dimension), each lane keeps the reference
//!   row-sequential accumulation, and zero-voltage rows are included as
//!   exact `+0.0` products instead of being index-skipped. Both choices
//!   are provably bit-preserving, so this backend is **bit-identical**
//!   to [`Backend::Scalar`] — the property that keeps the repo-wide
//!   blocked ≡ per-sample equivalence proptests meaningful under
//!   vectorization. (The `F32` suffix names the float-vector half of the
//!   float/fixed pair; the arithmetic stays `f64`, because lane-mapping
//!   the reduction dimension or narrowing the accumulator would both
//!   forfeit bit-exactness — the contract a vector backend must keep.)
//! * [`Backend::FixedI32`] — an integer kernel on pre-quantized inputs:
//!   held voltages and conductances are rounded to `i32` codes
//!   (`2^15` levels each) and the weighted sum runs as an exact `i64`
//!   dot product — a more honest model of the paper's time-domain ADC,
//!   where spike times are counted in discrete pulse quanta rather than
//!   measured as real numbers. This backend is **bounded-error**, not
//!   bit-exact: [`BatchPlan::backend_error_bound`] computes the
//!   documented worst-case per-column deviation from the scalar
//!   reference, and the `backend_equivalence` proptests pin every output
//!   inside it.
//!
//! Backends are selected per run via
//! [`RunOptions::with_backend`](crate::inference::RunOptions::with_backend)
//! and threaded through the serve path
//! ([`ServerConfig::with_backend`](../../resipe_serve/struct.ServerConfig.html)
//! where the `resipe-serve` crate is in use); the chosen backend is
//! surfaced in telemetry (per-backend block counters) and in the serving
//! `STATS` snapshot.
//!
//! # Determinism
//!
//! Every backend is a pure function of `(plan, activations)` — no
//! randomness, no host-dependent tiling, no data-dependent reassociation
//! — so a given backend produces the same bits on every machine, for
//! every block size, on every run. Block size only changes how many
//! samples share one pass over the tile data, never the per-sample
//! operation sequence.

use crate::batch::{BatchPlan, BatchScratch};

/// Quantization depth of the fixed-point backend: held voltages and
/// conductances are each rounded to `2^FIXED_QBITS` levels across their
/// physical range (`[0, V_s]` and `[0, g_max]` respectively).
///
/// 15 bits keeps every `i64` accumulator product within `2^30` (so even
/// pathological tile heights cannot overflow) while holding the
/// per-column error bound far below the circuit non-idealities the
/// engine already models.
pub const FIXED_QBITS: u32 = 15;

/// Number of quantization levels (`2^FIXED_QBITS`) of the fixed-point
/// backend.
pub const FIXED_LEVELS: f64 = (1u32 << FIXED_QBITS) as f64;

/// Lane width of the [`Backend::VectorF32`] kernel: how many *samples*
/// one unrolled inner loop advances per conductance load. Lanes map to
/// the sample dimension only, so the width is a pure throughput knob —
/// it can never change output bits.
pub const VECTOR_LANES: usize = 4;

mod sealed {
    /// Seals [`super::KernelBackend`]: backends stage into crate-private
    /// scratch buffers, so the trait is implementable only inside this
    /// crate. `DESIGN.md` § "Kernel backends" documents what a new
    /// in-crate backend must uphold.
    pub trait Sealed {}
    impl Sealed for super::ScalarKernel {}
    impl Sealed for super::VectorF32Kernel {}
    impl Sealed for super::FixedI32Kernel {}
}

/// Selects which [`KernelBackend`] executes the crossbar weighted sums.
///
/// This is the value carried by
/// [`RunOptions`](crate::inference::RunOptions): cheap to copy, hash and
/// compare, with [`Backend::Scalar`] as the default everywhere. The
/// implementation behind each variant is reached via
/// [`Backend::kernel`].
///
/// ```
/// use resipe::inference::RunOptions;
/// use resipe::kernel::Backend;
///
/// let opts = RunOptions::planned().with_backend(Backend::VectorF32);
/// assert_eq!(opts.backend.name(), "vector_f32");
/// assert!(opts.backend.is_exact());
/// assert_eq!(Backend::from_name("fixed_i32"), Some(Backend::FixedI32));
/// assert_eq!(RunOptions::planned().backend, Backend::Scalar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The bit-exact scalar reference kernel (the default).
    #[default]
    Scalar,
    /// The sample-lane vector kernel — bit-identical to `Scalar`.
    VectorF32,
    /// The fixed-point integer kernel — bounded-error
    /// (see [`BatchPlan::backend_error_bound`]).
    FixedI32,
}

impl Backend {
    /// Every selectable backend, in sweep order.
    pub fn all() -> [Backend; 3] {
        [Backend::Scalar, Backend::VectorF32, Backend::FixedI32]
    }

    /// The backend's stable machine-readable name, as surfaced in
    /// telemetry counters, `BENCH_throughput.json` rows and the serving
    /// `STATS` snapshot.
    pub fn name(self) -> &'static str {
        self.kernel().name()
    }

    /// Parses a [`Backend::name`] back into a selector (`None` for
    /// unknown names).
    pub fn from_name(name: &str) -> Option<Backend> {
        Backend::all().into_iter().find(|b| b.name() == name)
    }

    /// `true` when this backend is bit-identical to the scalar
    /// reference (rather than bounded-error).
    pub fn is_exact(self) -> bool {
        self.kernel().is_exact()
    }

    /// The implementation behind this selector.
    pub fn kernel(self) -> &'static dyn KernelBackend {
        match self {
            Backend::Scalar => &ScalarKernel,
            Backend::VectorF32 => &VectorF32Kernel,
            Backend::FixedI32 => &FixedI32Kernel,
        }
    }
}

/// The strategy interface one kernel backend implements.
///
/// The trait is sealed: backends read crate-private plan and scratch
/// internals, so new implementations live in this crate (the written
/// contract for adding one is in `DESIGN.md` § "Kernel backends").
/// Callers select a backend with [`Backend`] and never invoke these
/// methods directly — [`BatchPlan::forward_block_with`] drives them.
///
/// # Contract (summary)
///
/// * **Determinism** — output bits are a pure function of
///   `(plan, activations)`; never of block size, host, thread count or
///   iteration timing.
/// * **Fixed reduction order** — each `(column, sample)` accumulation
///   chain must use one documented, input-independent operation order.
///   Exact backends must use the reference row-sequential order; a
///   backend that reassociates must declare itself bounded-error and
///   back a computable bound.
/// * **Scratch/aliasing** — a backend may only write the staging
///   buffers handed to it ([`BatchScratch`]); it must not retain
///   pointers across calls or communicate between tiles except through
///   its declared per-plan prepared state.
/// * **Equivalence obligation** — exact backends are gated by
///   bit-equality proptests against the scalar reference; bounded-error
///   backends by proptests against their published bound.
pub trait KernelBackend: sealed::Sealed + std::fmt::Debug + Send + Sync {
    /// Stable machine-readable backend name (`snake_case`).
    fn name(&self) -> &'static str;

    /// `true` when bit-identical to [`Backend::Scalar`] by construction.
    fn is_exact(&self) -> bool;

    /// Conductance-state bytes this backend streams in one pass over
    /// all of `plan`'s tiles — the per-block memory traffic reported to
    /// the telemetry `kernel_bytes_streamed` counter. The fixed-point
    /// backend streams `i32` codes, half the bytes of the `f64`
    /// backends.
    fn stream_bytes(&self, plan: &BatchPlan) -> u64;

    /// Per-(tile, block) preparation after the shared S1 encode has
    /// filled the scratch staging buffers (e.g. quantizing held
    /// voltages). The default does nothing.
    fn prepare_tile_block(
        &self,
        plan: &BatchPlan,
        tile: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        let _ = (plan, tile, samples, scratch);
    }

    /// Computes the sampled `(V_out⁺, V_out⁻)` of every
    /// `(column, sample)` pair of one tile into the scratch staging
    /// buffer at index `column * samples + sample`. The caller has
    /// already run the shared encode and sized the staging buffer; the
    /// shared decode pass consumes it afterwards.
    fn stage_tile_block(
        &self,
        plan: &BatchPlan,
        tile: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    );
}

/// The bit-exact scalar reference kernel: a sparse (non-zero-indexed)
/// column-major walk accumulating each column's weighted sum in row
/// order — the exact floating-point sequence of
/// [`MappedWeights::forward`](crate::mapping::MappedWeights::forward).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl KernelBackend for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn stream_bytes(&self, plan: &BatchPlan) -> u64 {
        plan.tile_stream_bytes()
    }

    fn stage_tile_block(
        &self,
        plan: &BatchPlan,
        tile: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        plan.stage_tile_block_scalar(tile, samples, scratch);
    }
}

/// The sample-lane vector kernel: unrolls [`VECTOR_LANES`] samples per
/// conductance load with a fixed, reference-order reduction per lane.
///
/// Bit-exactness argument (the two deltas versus the scalar walk):
///
/// 1. **Dense rows instead of the non-zero index list.** A skipped row
///    holds exactly `+0.0` volts, its products are `±0.0`, and adding a
///    signed zero to an accumulator that is never `-0.0` (it starts at
///    `+0.0` and `+0.0 + ±0.0 == +0.0` in round-to-nearest) changes no
///    bits.
/// 2. **Lanes across samples.** Each `(column, sample)` chain is an
///    independent accumulator; unrolling loads `g[p]` once for
///    [`VECTOR_LANES`] samples but every chain still adds its products
///    in ascending row order — no reassociation anywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorF32Kernel;

impl KernelBackend for VectorF32Kernel {
    fn name(&self) -> &'static str {
        "vector_f32"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn stream_bytes(&self, plan: &BatchPlan) -> u64 {
        plan.tile_stream_bytes()
    }

    fn stage_tile_block(
        &self,
        plan: &BatchPlan,
        tile: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        plan.stage_tile_block_vector(tile, samples, scratch);
    }
}

/// The fixed-point integer kernel: quantizes held voltages and
/// conductances to `i32` codes ([`FIXED_QBITS`] bits each) and runs the
/// weighted sum as an exact `i64` dot product, modelling the paper's
/// time-domain ADC counting discrete pulse quanta.
///
/// The analog constants of the charge division (`ΣG`, the charge
/// factor, the decode constants `k_j`) remain `f64` — they are circuit
/// properties, not ADC arithmetic. The only deviation from the scalar
/// reference is therefore the input quantization, which is what makes
/// the worst-case bound of [`BatchPlan::backend_error_bound`] tight and
/// computable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedI32Kernel;

impl KernelBackend for FixedI32Kernel {
    fn name(&self) -> &'static str {
        "fixed_i32"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn stream_bytes(&self, plan: &BatchPlan) -> u64 {
        // i32 codes instead of f64 conductances: half the traffic.
        plan.tile_stream_bytes() / 2
    }

    fn prepare_tile_block(
        &self,
        plan: &BatchPlan,
        tile: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        let _ = (tile, samples);
        plan.quantize_block_inputs(scratch);
    }

    fn stage_tile_block(
        &self,
        plan: &BatchPlan,
        tile: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        plan.stage_tile_block_fixed(tile, samples, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Backend::all() {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert_eq!(b.kernel().name(), b.name());
        }
        assert_eq!(Backend::from_name("gpu"), None);
    }

    #[test]
    fn default_is_scalar() {
        assert_eq!(Backend::default(), Backend::Scalar);
        assert_eq!(Backend::default().name(), "scalar");
    }

    #[test]
    fn exactness_flags() {
        assert!(Backend::Scalar.is_exact());
        assert!(Backend::VectorF32.is_exact());
        assert!(!Backend::FixedI32.is_exact());
    }

    #[test]
    fn stable_names() {
        let names: Vec<&str> = Backend::all().iter().map(|b| b.name()).collect();
        assert_eq!(names, ["scalar", "vector_f32", "fixed_i32"]);
    }
}
