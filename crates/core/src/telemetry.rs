//! Hierarchical telemetry and profiling for compile and inference.
//!
//! The ReSiPE pipeline spends its time in three physically distinct
//! stages per MVM — **S1 encode** (the GD ramp sampling of Eq. 1), the
//! **computation stage** (the Δt crossbar charge of Eqs. 2–3), and
//! **S2 decode** (the comparator crossing of Eqs. 4–6) — and its energy
//! mostly in the COG cluster (the paper's Table II, 98.1 %). This module
//! makes that attribution observable:
//!
//! * **spans** — wall-clock timed regions forming the hierarchy
//!   `compile → layer → tile → (program/repair)` and
//!   `forward → layer → {s1_encode, crossbar, s2_decode}`;
//! * **counters** — MVMs issued, zero-activation skips, spare-column
//!   remaps, repair-ladder escalations, compile-cache hits/misses,
//!   comparator-offset rejects and saturated decodes;
//! * **histograms** — the `t_out` spike-time distribution and the
//!   `V_out` occupancy of the `C_cog` range (both normalized, 32 bins),
//!   so the Sec. III-D saturation non-linearity behind the Fig. 5/Fig. 7
//!   error is directly inspectable;
//! * **per-stage energy** — [`TelemetrySnapshot::attributed_energy`]
//!   multiplies the MVM counter by [`EnergyModel::stage_energy`], so
//!   profile reports sum to the same totals as
//!   [`crate::inference::HardwareNetwork::measured_energy`].
//!
//! # Overhead contract
//!
//! A [`Telemetry`] handle is a cheap clone of an optional [`Arc`] sink.
//! When **disabled** (the default everywhere), every recording call is a
//! single `Option` branch — no allocation, no atomics, no locks — and
//! the numeric path is untouched, so disabled-telemetry outputs are
//! **bit-identical** to the pre-telemetry engine. When **enabled**, the
//! hot per-sample path records through lock-free atomics (counters,
//! per-layer stage accumulators, histogram bins); mutexes guard only the
//! coarse span map, touched once per layer or tile, never per sample.
//! Enabling telemetry never changes a computed bit either — it only adds
//! observation (and the wall-clock cost of taking it).
//!
//! # Snapshot / reset semantics
//!
//! Like the MVM counter on [`crate::inference::HardwareNetwork`], the
//! sink accumulates monotonically; [`Telemetry::snapshot`] copies the
//! current totals out and [`Telemetry::reset`] zeroes them (e.g. between
//! measured batches). Handles cloned from one another share a sink —
//! a [`HardwareNetwork`](crate::inference::HardwareNetwork) clone keeps
//! reporting into the same recorder.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use resipe_analog::units::Joules;
use serde::{Deserialize, Serialize};

use crate::power::{EnergyModel, StageEnergy};

/// Bins in the normalized `t_out` / `V_out` histograms.
pub const HISTOGRAM_BINS: usize = 32;

/// Counter identities — the crate-internal recording interface.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Counter {
    /// Physical crossbar MVMs issued.
    Mvms,
    /// Wordlines skipped because their activation encoded to exactly 0.
    ZeroActivationSkips,
    /// Failing columns remapped onto spare bitlines by the repair ladder.
    SpareRemaps,
    /// Tiles whose repair escalated past re-programming (remap/permute).
    RepairEscalations,
    /// Programming pulses spent by the repair ladder.
    RepairPulses,
    /// Compile-cache hits.
    CompileCacheHits,
    /// Compile-cache misses (fresh compiles).
    CompileCacheMisses,
    /// Compiled networks evicted from the compile cache (LRU pressure).
    CompileCacheEvictions,
    /// Decodes whose comparator offset pushed `V_eff` outside the valid
    /// comparator range (the clamp engaged).
    ComparatorOffsetRejects,
    /// Decodes whose observed spike time saturated at the slice end.
    SaturatedDecodes,
    /// Sample blocks executed by the cache-blocked kernel.
    KernelBlocks,
    /// Samples evaluated inside those blocks (so
    /// `kernel_block_samples / kernel_blocks` is the mean block size).
    KernelBlockSamples,
    /// Tile conductance bytes streamed by the blocked kernel — one
    /// tile pass per block, versus one per sample unblocked.
    KernelBytesStreamed,
    /// Background scrub passes completed.
    ScrubPasses,
    /// Tiles BIST-checked by the background scrubber.
    TilesScrubbed,
    /// Tile repairs triggered by the background scrubber.
    ScrubRepairs,
    /// Epoch swaps: repaired/aged crossbar state published atomically.
    PlanSwaps,
    /// Wall-clock nanoseconds between a scrub pass detecting degradation
    /// and publishing the repaired epoch (time served degraded).
    DegradedServingNanos,
    /// Kernel blocks executed by the scalar reference backend.
    BackendScalarBlocks,
    /// Kernel blocks executed by the sample-lane vector backend.
    BackendVectorBlocks,
    /// Kernel blocks executed by the fixed-point integer backend.
    BackendFixedBlocks,
}

const COUNTER_COUNT: usize = 21;

/// One span's running aggregate.
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    nanos: u64,
}

/// Lock-free per-layer stage accumulators (all in nanoseconds / counts).
#[derive(Debug, Default)]
struct LayerStats {
    calls: AtomicU64,
    mvms: AtomicU64,
    zero_activation_skips: AtomicU64,
    s1_encode_nanos: AtomicU64,
    crossbar_nanos: AtomicU64,
    s2_decode_nanos: AtomicU64,
}

/// A fixed-bin histogram over the normalized range `[0, 1]`.
#[derive(Debug)]
struct Histogram {
    bins: [AtomicU64; HISTOGRAM_BINS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: f64) {
        let i = if !(v > 0.0) {
            0
        } else if v >= 1.0 {
            HISTOGRAM_BINS - 1
        } else {
            ((v * HISTOGRAM_BINS as f64) as usize).min(HISTOGRAM_BINS - 1)
        };
        self.bins[i].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bins: self
                .bins
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.bins {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The shared recorder behind enabled [`Telemetry`] handles.
#[derive(Debug)]
struct Sink {
    counters: [AtomicU64; COUNTER_COUNT],
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    layers: Mutex<BTreeMap<usize, Arc<LayerStats>>>,
    t_out: Histogram,
    v_out: Histogram,
}

impl Sink {
    fn new() -> Sink {
        Sink {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(BTreeMap::new()),
            layers: Mutex::new(BTreeMap::new()),
            t_out: Histogram::new(),
            v_out: Histogram::new(),
        }
    }
}

/// A cloneable handle to an optional telemetry recorder.
///
/// See the [module docs](crate::telemetry) for the overhead contract and
/// the span hierarchy. Construct with [`Telemetry::enabled`] to record or
/// [`Telemetry::disabled`] (also [`Default`]) for the zero-cost no-op.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Sink>>,
}

impl Telemetry {
    /// A no-op handle: every recording call is a single branch.
    pub fn disabled() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A fresh recorder. Clones of this handle share its sink.
    pub fn enabled() -> Telemetry {
        Telemetry {
            sink: Some(Arc::new(Sink::new())),
        }
    }

    /// `true` when this handle records into a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a wall-clock span at `path`; it is recorded when the
    /// returned guard drops. A no-op on a disabled handle.
    pub fn span(&self, path: &str) -> SpanGuard {
        self.span_with(|| path.to_owned())
    }

    /// Like [`Telemetry::span`] but builds the path lazily, so a
    /// disabled handle never pays for the `format!`.
    pub fn span_with<F: FnOnce() -> String>(&self, path: F) -> SpanGuard {
        SpanGuard {
            inner: self
                .sink
                .as_ref()
                .map(|s| (Arc::clone(s), path(), Instant::now())),
        }
    }

    /// Adds `n` to a counter. A no-op on a disabled handle.
    pub(crate) fn add(&self, counter: Counter, n: u64) {
        if let Some(sink) = &self.sink {
            sink.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A recording probe for one network layer, or `None` on a disabled
    /// handle. `slice_s` and `vs` normalize the histogram inputs.
    pub(crate) fn layer_probe(&self, layer: usize, slice_s: f64, vs: f64) -> Option<LayerProbe> {
        let sink = self.sink.as_ref()?;
        let stats = {
            let mut layers = sink.layers.lock().expect("telemetry layer map poisoned");
            Arc::clone(layers.entry(layer).or_default())
        };
        Some(LayerProbe {
            stats,
            sink: Arc::clone(sink),
            inv_slice: 1.0 / slice_s,
            inv_vs: 1.0 / vs,
        })
    }

    /// Copies the current totals out (cheap and empty on a disabled
    /// handle). Stage aggregates are also synthesized into
    /// `forward/layer{i}/{s1_encode, crossbar, s2_decode}` span entries,
    /// completing the span hierarchy.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(sink) = &self.sink else {
            return TelemetrySnapshot::default();
        };
        let c = |i: Counter| sink.counters[i as usize].load(Ordering::Relaxed);
        let counters = CounterSnapshot {
            mvms: c(Counter::Mvms),
            zero_activation_skips: c(Counter::ZeroActivationSkips),
            spare_remaps: c(Counter::SpareRemaps),
            repair_escalations: c(Counter::RepairEscalations),
            repair_pulses: c(Counter::RepairPulses),
            compile_cache_hits: c(Counter::CompileCacheHits),
            compile_cache_misses: c(Counter::CompileCacheMisses),
            compile_cache_evictions: c(Counter::CompileCacheEvictions),
            comparator_offset_rejects: c(Counter::ComparatorOffsetRejects),
            saturated_decodes: c(Counter::SaturatedDecodes),
            kernel_blocks: c(Counter::KernelBlocks),
            kernel_block_samples: c(Counter::KernelBlockSamples),
            kernel_bytes_streamed: c(Counter::KernelBytesStreamed),
            scrub_passes: c(Counter::ScrubPasses),
            tiles_scrubbed: c(Counter::TilesScrubbed),
            scrub_repairs: c(Counter::ScrubRepairs),
            plan_swaps: c(Counter::PlanSwaps),
            degraded_serving_nanos: c(Counter::DegradedServingNanos),
            backend_scalar_blocks: c(Counter::BackendScalarBlocks),
            backend_vector_f32_blocks: c(Counter::BackendVectorBlocks),
            backend_fixed_i32_blocks: c(Counter::BackendFixedBlocks),
        };
        let mut spans: Vec<SpanSnapshot> = sink
            .spans
            .lock()
            .expect("telemetry span map poisoned")
            .iter()
            .map(|(path, agg)| SpanSnapshot {
                path: path.clone(),
                count: agg.count,
                nanos: agg.nanos,
            })
            .collect();
        let layers: Vec<LayerSnapshot> = sink
            .layers
            .lock()
            .expect("telemetry layer map poisoned")
            .iter()
            .map(|(&layer, s)| LayerSnapshot {
                layer,
                calls: s.calls.load(Ordering::Relaxed),
                mvms: s.mvms.load(Ordering::Relaxed),
                zero_activation_skips: s.zero_activation_skips.load(Ordering::Relaxed),
                s1_encode_nanos: s.s1_encode_nanos.load(Ordering::Relaxed),
                crossbar_nanos: s.crossbar_nanos.load(Ordering::Relaxed),
                s2_decode_nanos: s.s2_decode_nanos.load(Ordering::Relaxed),
            })
            .collect();
        for l in &layers {
            for (stage, nanos) in [
                ("s1_encode", l.s1_encode_nanos),
                ("crossbar", l.crossbar_nanos),
                ("s2_decode", l.s2_decode_nanos),
            ] {
                spans.push(SpanSnapshot {
                    path: format!("forward/layer{}/{stage}", l.layer),
                    count: l.calls,
                    nanos,
                });
            }
        }
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        TelemetrySnapshot {
            enabled: true,
            counters,
            spans,
            layers,
            t_out: sink.t_out.snapshot(),
            v_out: sink.v_out.snapshot(),
        }
    }

    /// Zeroes every counter, span, layer aggregate and histogram.
    pub fn reset(&self) {
        let Some(sink) = &self.sink else { return };
        for c in &sink.counters {
            c.store(0, Ordering::Relaxed);
        }
        sink.spans
            .lock()
            .expect("telemetry span map poisoned")
            .clear();
        sink.layers
            .lock()
            .expect("telemetry layer map poisoned")
            .clear();
        sink.t_out.reset();
        sink.v_out.reset();
    }
}

/// RAII guard of one open span — records its wall-clock duration into
/// the sink on drop. Obtained from [`Telemetry::span`].
#[must_use = "a span guard records on drop; binding it to `_x` keeps it open"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Arc<Sink>, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, path, start)) = self.inner.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            let mut spans = sink.spans.lock().expect("telemetry span map poisoned");
            let agg = spans.entry(path).or_default();
            agg.count += 1;
            agg.nanos += nanos;
        }
    }
}

/// Per-sample stage aggregates delivered by the batched hot path in one
/// call, keeping atomic traffic off the inner loops.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SampleStats {
    pub(crate) s1_encode_nanos: u64,
    pub(crate) crossbar_nanos: u64,
    pub(crate) s2_decode_nanos: u64,
    pub(crate) mvms: u64,
    pub(crate) zero_activation_skips: u64,
    pub(crate) comparator_offset_rejects: u64,
    pub(crate) saturated_decodes: u64,
}

/// A hot-path recording probe bound to one network layer.
///
/// Constructed internally (per layer, per forward call) from an enabled
/// [`Telemetry`] handle; safe to share across the rayon workers of a
/// batched forward — all recording is atomic.
#[derive(Debug, Clone)]
pub struct LayerProbe {
    stats: Arc<LayerStats>,
    sink: Arc<Sink>,
    inv_slice: f64,
    inv_vs: f64,
}

impl LayerProbe {
    /// Folds one sample's stage aggregates into the layer and the global
    /// counters.
    pub(crate) fn record_sample(&self, s: SampleStats) {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        self.stats.mvms.fetch_add(s.mvms, Ordering::Relaxed);
        self.stats
            .zero_activation_skips
            .fetch_add(s.zero_activation_skips, Ordering::Relaxed);
        self.stats
            .s1_encode_nanos
            .fetch_add(s.s1_encode_nanos, Ordering::Relaxed);
        self.stats
            .crossbar_nanos
            .fetch_add(s.crossbar_nanos, Ordering::Relaxed);
        self.stats
            .s2_decode_nanos
            .fetch_add(s.s2_decode_nanos, Ordering::Relaxed);
        let c = &self.sink.counters;
        c[Counter::Mvms as usize].fetch_add(s.mvms, Ordering::Relaxed);
        c[Counter::ZeroActivationSkips as usize]
            .fetch_add(s.zero_activation_skips, Ordering::Relaxed);
        c[Counter::ComparatorOffsetRejects as usize]
            .fetch_add(s.comparator_offset_rejects, Ordering::Relaxed);
        c[Counter::SaturatedDecodes as usize].fetch_add(s.saturated_decodes, Ordering::Relaxed);
    }

    /// Folds one *block's* stage aggregates into the layer and global
    /// counters. Identical to [`LayerProbe::record_sample`] except the
    /// call counter advances by the block's `samples`, so per-layer
    /// `calls` keeps meaning "samples seen" on the blocked path.
    pub(crate) fn record_block(&self, s: SampleStats, samples: u64) {
        self.stats.calls.fetch_add(samples, Ordering::Relaxed);
        self.stats.mvms.fetch_add(s.mvms, Ordering::Relaxed);
        self.stats
            .zero_activation_skips
            .fetch_add(s.zero_activation_skips, Ordering::Relaxed);
        self.stats
            .s1_encode_nanos
            .fetch_add(s.s1_encode_nanos, Ordering::Relaxed);
        self.stats
            .crossbar_nanos
            .fetch_add(s.crossbar_nanos, Ordering::Relaxed);
        self.stats
            .s2_decode_nanos
            .fetch_add(s.s2_decode_nanos, Ordering::Relaxed);
        let c = &self.sink.counters;
        c[Counter::Mvms as usize].fetch_add(s.mvms, Ordering::Relaxed);
        c[Counter::ZeroActivationSkips as usize]
            .fetch_add(s.zero_activation_skips, Ordering::Relaxed);
        c[Counter::ComparatorOffsetRejects as usize]
            .fetch_add(s.comparator_offset_rejects, Ordering::Relaxed);
        c[Counter::SaturatedDecodes as usize].fetch_add(s.saturated_decodes, Ordering::Relaxed);
    }

    /// Records one blocked-kernel invocation against the global kernel
    /// counters: a block of `samples` samples that streamed `bytes` of
    /// tile conductance data through the selected `backend`, which is
    /// also tallied on its own per-backend block counter.
    pub(crate) fn record_kernel(&self, samples: u64, bytes: u64, backend: crate::kernel::Backend) {
        let c = &self.sink.counters;
        c[Counter::KernelBlocks as usize].fetch_add(1, Ordering::Relaxed);
        c[Counter::KernelBlockSamples as usize].fetch_add(samples, Ordering::Relaxed);
        c[Counter::KernelBytesStreamed as usize].fetch_add(bytes, Ordering::Relaxed);
        let by_backend = match backend {
            crate::kernel::Backend::Scalar => Counter::BackendScalarBlocks,
            crate::kernel::Backend::VectorF32 => Counter::BackendVectorBlocks,
            crate::kernel::Backend::FixedI32 => Counter::BackendFixedBlocks,
        };
        c[by_backend as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` MVMs against this layer (the per-sample sequential
    /// path, which has no stage-level timing).
    pub(crate) fn record_mvms(&self, n: u64) {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        self.stats.mvms.fetch_add(n, Ordering::Relaxed);
        self.sink.counters[Counter::Mvms as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one column decode into the normalized histograms:
    /// `v_eff` against the `C_cog`/comparator voltage range `[0, V_s]`,
    /// `t_obs` against the S2 slice.
    pub(crate) fn record_decode(&self, v_eff: f64, t_obs: f64) {
        self.sink.v_out.record(v_eff * self.inv_vs);
        self.sink.t_out.record(t_obs * self.inv_slice);
    }
}

/// A point-in-time copy of one counter set.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Physical crossbar MVMs issued.
    pub mvms: u64,
    /// Wordlines skipped because their activation encoded to exactly 0.
    pub zero_activation_skips: u64,
    /// Failing columns remapped onto spare bitlines.
    pub spare_remaps: u64,
    /// Tiles whose repair escalated past re-programming.
    pub repair_escalations: u64,
    /// Programming pulses spent by the repair ladder.
    pub repair_pulses: u64,
    /// Compile-cache hits.
    pub compile_cache_hits: u64,
    /// Compile-cache misses (fresh compiles).
    pub compile_cache_misses: u64,
    /// Compiled networks evicted from the compile cache (LRU pressure).
    pub compile_cache_evictions: u64,
    /// Decodes whose comparator offset engaged the range clamp.
    pub comparator_offset_rejects: u64,
    /// Decodes whose observed spike time saturated at the slice end.
    pub saturated_decodes: u64,
    /// Sample blocks executed by the cache-blocked kernel.
    pub kernel_blocks: u64,
    /// Samples evaluated inside those blocks.
    pub kernel_block_samples: u64,
    /// Tile conductance bytes streamed by the blocked kernel.
    pub kernel_bytes_streamed: u64,
    /// Background scrub passes completed.
    pub scrub_passes: u64,
    /// Tiles BIST-checked by the background scrubber.
    pub tiles_scrubbed: u64,
    /// Tile repairs triggered by the background scrubber.
    pub scrub_repairs: u64,
    /// Epoch swaps (repaired/aged state published atomically).
    pub plan_swaps: u64,
    /// Wall-clock nanoseconds served degraded (detection → publish).
    pub degraded_serving_nanos: u64,
    /// Kernel blocks executed by the scalar reference backend.
    pub backend_scalar_blocks: u64,
    /// Kernel blocks executed by the sample-lane vector backend.
    pub backend_vector_f32_blocks: u64,
    /// Kernel blocks executed by the fixed-point integer backend.
    pub backend_fixed_i32_blocks: u64,
}

/// One aggregated span: every open/close of `path` summed.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Hierarchical path, e.g. `compile/layer0/tile3/repair`.
    pub path: String,
    /// Times the span was opened.
    pub count: u64,
    /// Total wall-clock nanoseconds across all openings.
    pub nanos: u64,
}

/// One layer's stage attribution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSnapshot {
    /// Network layer index (matching `forward/layer{i}` spans).
    pub layer: usize,
    /// MVM invocations recorded (samples, or pixels for convolutions).
    pub calls: u64,
    /// Physical crossbar MVMs issued by this layer.
    pub mvms: u64,
    /// Zero-activation skips in this layer's S1 encode.
    pub zero_activation_skips: u64,
    /// Wall-clock nanoseconds in S1 encode.
    pub s1_encode_nanos: u64,
    /// Wall-clock nanoseconds in the Δt computation stage.
    pub crossbar_nanos: u64,
    /// Wall-clock nanoseconds in S2 decode (including the digital
    /// rescale).
    pub s2_decode_nanos: u64,
}

/// A fixed-bin histogram over a normalized `[0, 1]` range.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bin counts; bin `i` covers `[i/N, (i+1)/N)` of the range.
    pub bins: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total recorded events.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Fraction of events in the top bin — the saturation occupancy of
    /// the observed range (0 when nothing was recorded).
    pub fn saturation_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        *self.bins.last().unwrap_or(&0) as f64 / total as f64
    }
}

/// A point-in-time copy of a telemetry sink, as returned by
/// [`Telemetry::snapshot`] and carried on
/// [`crate::inference::RunResult`].
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// `false` for the empty snapshot of a disabled handle.
    pub enabled: bool,
    /// Global counters.
    pub counters: CounterSnapshot,
    /// Aggregated spans, sorted by path (stage spans synthesized from
    /// the per-layer aggregates included).
    pub spans: Vec<SpanSnapshot>,
    /// Per-layer stage attribution, sorted by layer index.
    pub layers: Vec<LayerSnapshot>,
    /// Normalized `t_out / slice` spike-time distribution.
    pub t_out: HistogramSnapshot,
    /// Normalized `V_out / V_s` occupancy of the `C_cog` range.
    pub v_out: HistogramSnapshot,
}

impl TelemetrySnapshot {
    /// The aggregated span at `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Total `(s1_encode, crossbar, s2_decode)` nanoseconds across all
    /// layers.
    pub fn stage_nanos(&self) -> (u64, u64, u64) {
        self.layers.iter().fold((0, 0, 0), |(a, b, c), l| {
            (
                a + l.s1_encode_nanos,
                b + l.crossbar_nanos,
                c + l.s2_decode_nanos,
            )
        })
    }

    /// Energy attributed per stage: the MVM counter times the model's
    /// per-MVM stage split, so the stage total equals
    /// `mvms × EnergyModel::mvm_energy().total()` — the same quantity
    /// [`crate::inference::HardwareNetwork::measured_energy`] reports.
    pub fn attributed_energy(&self, model: &EnergyModel) -> StageEnergy {
        let n = self.counters.mvms as f64;
        let per = model.stage_energy();
        StageEnergy {
            s1_encode: Joules(n * per.s1_encode.0),
            crossbar: Joules(n * per.crossbar.0),
            s2_decode: Joules(n * per.s2_decode.0),
        }
    }

    /// Serializes the snapshot as a stable-key-order JSON object (the
    /// `BENCH_profile.json` schema fragment under `"telemetry"`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        let c = &self.counters;
        s.push_str(&format!(
            "  \"counters\": {{\"mvms\": {}, \"zero_activation_skips\": {}, \
             \"spare_remaps\": {}, \"repair_escalations\": {}, \"repair_pulses\": {}, \
             \"compile_cache_hits\": {}, \"compile_cache_misses\": {}, \
             \"compile_cache_evictions\": {}, \
             \"comparator_offset_rejects\": {}, \"saturated_decodes\": {}, \
             \"kernel_blocks\": {}, \"kernel_block_samples\": {}, \
             \"kernel_bytes_streamed\": {}, \
             \"scrub_passes\": {}, \"tiles_scrubbed\": {}, \"scrub_repairs\": {}, \
             \"plan_swaps\": {}, \"degraded_serving_nanos\": {}, \
             \"backend_scalar_blocks\": {}, \"backend_vector_f32_blocks\": {}, \
             \"backend_fixed_i32_blocks\": {}}},\n",
            c.mvms,
            c.zero_activation_skips,
            c.spare_remaps,
            c.repair_escalations,
            c.repair_pulses,
            c.compile_cache_hits,
            c.compile_cache_misses,
            c.compile_cache_evictions,
            c.comparator_offset_rejects,
            c.saturated_decodes,
            c.kernel_blocks,
            c.kernel_block_samples,
            c.kernel_bytes_streamed,
            c.scrub_passes,
            c.tiles_scrubbed,
            c.scrub_repairs,
            c.plan_swaps,
            c.degraded_serving_nanos,
            c.backend_scalar_blocks,
            c.backend_vector_f32_blocks,
            c.backend_fixed_i32_blocks
        ));
        s.push_str("  \"spans\": [\n");
        for (i, sp) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"path\": \"{}\", \"count\": {}, \"nanos\": {}}}{comma}\n",
                sp.path, sp.count, sp.nanos
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"layers\": [\n");
        for (i, l) in self.layers.iter().enumerate() {
            let comma = if i + 1 < self.layers.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"layer\": {}, \"calls\": {}, \"mvms\": {}, \
                 \"zero_activation_skips\": {}, \"s1_encode_nanos\": {}, \
                 \"crossbar_nanos\": {}, \"s2_decode_nanos\": {}}}{comma}\n",
                l.layer,
                l.calls,
                l.mvms,
                l.zero_activation_skips,
                l.s1_encode_nanos,
                l.crossbar_nanos,
                l.s2_decode_nanos
            ));
        }
        s.push_str("  ],\n");
        for (name, hist, comma) in [("t_out", &self.t_out, ","), ("v_out", &self.v_out, "")] {
            let bins: Vec<String> = hist.bins.iter().map(u64::to_string).collect();
            s.push_str(&format!(
                "  \"{name}\": {{\"bins\": [{}], \"total\": {}}}{comma}\n",
                bins.join(", "),
                hist.total()
            ));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.add(Counter::Mvms, 5);
        {
            let _g = t.span("forward");
        }
        assert!(t.layer_probe(0, 100e-9, 1.0).is_none());
        let snap = t.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.counters.mvms, 0);
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_and_spans_accumulate() {
        let t = Telemetry::enabled();
        t.add(Counter::Mvms, 3);
        t.add(Counter::Mvms, 4);
        t.add(Counter::CompileCacheHits, 1);
        {
            let _g = t.span("compile");
        }
        {
            let _g = t.span("compile");
        }
        let snap = t.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counters.mvms, 7);
        assert_eq!(snap.counters.compile_cache_hits, 1);
        let compile = snap.span("compile").expect("compile span");
        assert_eq!(compile.count, 2);
    }

    #[test]
    fn shared_sink_across_clones() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.add(Counter::SpareRemaps, 2);
        assert_eq!(t.snapshot().counters.spare_remaps, 2);
        t.reset();
        assert_eq!(u.snapshot().counters.spare_remaps, 0);
    }

    #[test]
    fn probe_aggregates_per_layer_and_globally() {
        let t = Telemetry::enabled();
        let probe = t.layer_probe(1, 100e-9, 1.0).expect("enabled probe");
        probe.record_sample(SampleStats {
            s1_encode_nanos: 10,
            crossbar_nanos: 20,
            s2_decode_nanos: 30,
            mvms: 50,
            zero_activation_skips: 7,
            comparator_offset_rejects: 1,
            saturated_decodes: 2,
        });
        probe.record_decode(0.5, 50e-9);
        probe.record_decode(2.0, 120e-9); // clamps into the top bins
        let snap = t.snapshot();
        assert_eq!(snap.counters.mvms, 50);
        assert_eq!(snap.counters.zero_activation_skips, 7);
        assert_eq!(snap.counters.comparator_offset_rejects, 1);
        assert_eq!(snap.counters.saturated_decodes, 2);
        assert_eq!(snap.layers.len(), 1);
        let l = snap.layers[0];
        assert_eq!(l.layer, 1);
        assert_eq!(l.calls, 1);
        assert_eq!(
            (l.s1_encode_nanos, l.crossbar_nanos, l.s2_decode_nanos),
            (10, 20, 30)
        );
        assert_eq!(snap.stage_nanos(), (10, 20, 30));
        assert_eq!(snap.v_out.total(), 2);
        assert_eq!(snap.t_out.total(), 2);
        assert_eq!(*snap.t_out.bins.last().unwrap(), 1);
        assert!(snap.v_out.saturation_fraction() > 0.4);
        // Stage spans are synthesized into the hierarchy.
        assert!(snap.span("forward/layer1/s1_encode").is_some());
    }

    #[test]
    fn block_records_count_samples_and_kernel_traffic() {
        let t = Telemetry::enabled();
        let probe = t.layer_probe(0, 100e-9, 1.0).expect("enabled probe");
        probe.record_block(
            SampleStats {
                mvms: 16,
                zero_activation_skips: 3,
                ..SampleStats::default()
            },
            8,
        );
        probe.record_kernel(8, 4096, crate::kernel::Backend::Scalar);
        probe.record_kernel(5, 4096, crate::kernel::Backend::VectorF32);
        probe.record_kernel(2, 2048, crate::kernel::Backend::FixedI32);
        let snap = t.snapshot();
        assert_eq!(snap.layers[0].calls, 8, "calls advance by the block");
        assert_eq!(snap.layers[0].mvms, 16);
        assert_eq!(snap.counters.zero_activation_skips, 3);
        assert_eq!(snap.counters.kernel_blocks, 3);
        assert_eq!(snap.counters.kernel_block_samples, 15);
        assert_eq!(snap.counters.kernel_bytes_streamed, 10240);
        assert_eq!(snap.counters.backend_scalar_blocks, 1);
        assert_eq!(snap.counters.backend_vector_f32_blocks, 1);
        assert_eq!(snap.counters.backend_fixed_i32_blocks, 1);
    }

    #[test]
    fn histogram_edges_clamp() {
        let h = Histogram::new();
        h.record(-0.5);
        h.record(0.0);
        h.record(0.999);
        h.record(1.0);
        h.record(55.0);
        let snap = h.snapshot();
        assert_eq!(snap.bins[0], 2);
        assert_eq!(snap.bins[HISTOGRAM_BINS - 1], 3);
    }

    #[test]
    fn attributed_energy_sums_to_measured_total() {
        let t = Telemetry::enabled();
        t.add(Counter::Mvms, 150);
        let model = EnergyModel::paper();
        let e = t.snapshot().attributed_energy(&model);
        let expected = 150.0 * model.mvm_energy().total().0;
        let total = e.total().0;
        assert!(
            ((total - expected) / expected).abs() < 0.01,
            "stage attribution {total:e} vs measured {expected:e}"
        );
    }

    #[test]
    fn json_has_stable_schema_keys() {
        let t = Telemetry::enabled();
        t.add(Counter::Mvms, 1);
        let json = t.snapshot().to_json();
        for key in [
            "\"enabled\"",
            "\"counters\"",
            "\"mvms\"",
            "\"zero_activation_skips\"",
            "\"spare_remaps\"",
            "\"repair_escalations\"",
            "\"repair_pulses\"",
            "\"compile_cache_hits\"",
            "\"compile_cache_misses\"",
            "\"compile_cache_evictions\"",
            "\"comparator_offset_rejects\"",
            "\"saturated_decodes\"",
            "\"kernel_blocks\"",
            "\"kernel_block_samples\"",
            "\"kernel_bytes_streamed\"",
            "\"scrub_passes\"",
            "\"tiles_scrubbed\"",
            "\"scrub_repairs\"",
            "\"plan_swaps\"",
            "\"degraded_serving_nanos\"",
            "\"backend_scalar_blocks\"",
            "\"backend_vector_f32_blocks\"",
            "\"backend_fixed_i32_blocks\"",
            "\"spans\"",
            "\"layers\"",
            "\"t_out\"",
            "\"v_out\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::enabled();
        t.add(Counter::RepairPulses, 9);
        let probe = t.layer_probe(0, 100e-9, 1.0).unwrap();
        probe.record_decode(0.3, 50e-9);
        {
            let _g = t.span("forward");
        }
        t.reset();
        let snap = t.snapshot();
        assert_eq!(snap.counters.repair_pulses, 0);
        assert!(snap.spans.is_empty());
        assert!(snap.layers.is_empty());
        assert_eq!(snap.t_out.total(), 0);
    }
}
