//! Mapping weight matrices onto tiled differential crossbar pairs.
//!
//! A logical weight matrix `W: [rows, cols]` becomes:
//!
//! * a **differential pair** of conductance arrays (`G⁺`, `G⁻`) since
//!   crossbars only realize non-negative conductances — positive weights
//!   program `G⁺`, negative weights `G⁻`, and the peripheral subtracts the
//!   two decoded column results;
//! * a stack of **row tiles** of at most `max_rows` (the paper's array has
//!   32 wordlines), whose partial results are accumulated digitally —
//!   standard practice for PIM designs whose layers exceed the array size.
//!
//! # The decode model and the calibration cancellation
//!
//! With the paper's parameters the column charging `V_out = V_eq (1 −
//! e^(−Δt ΣG / C_cog))` operates far from its linear region, so the naive
//! Eq. 5 time-domain decode would be wildly mis-scaled. The faithful model
//! follows from an observation the paper makes qualitatively ("C_gd is
//! used for calibration in both S1 and S2, which partially cancels out the
//! effect"): because S2 inverts exactly the ramp S1 samples,
//! **voltages propagate exactly** through the spike domain —
//! `f(t_out) = V_out` with `f(t) = V_s (1 − e^(−t/τ))`. The column
//! transfer is exactly linear in the held voltages:
//!
//! `V_out_j = k_j · Σ_i V_i G_ij`, with the known per-column constant
//! `k_j = (1 − e^(−Δt ΣG_j / C_cog)) / ΣG_j`.
//!
//! The peripheral therefore decodes `Σ V_i G_ij = f(t_out_j) / k_j` using
//! the *nominal* (design-time) `ΣG_j`; under process variation the true
//! `ΣG_j` differs, which is part of the accuracy loss Fig. 7 measures.
//!
//! The residual circuit non-linearity is confined to how values enter the
//! voltage domain, captured by [`SpikeEncoding`]:
//!
//! * [`SpikeEncoding::LinearTime`] — the paper's raw format `t = a·t_max`:
//!   the held voltage is the concave `f(a·t_max)`, distorting the
//!   activations (the σ = 0 accuracy drop of Fig. 7);
//! * [`SpikeEncoding::PassThrough`] — a spike produced by a previous
//!   ReSiPE stage: its time already sits on the ramp curve, so the voltage
//!   it samples is exactly proportional to the value it carries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use resipe_analog::units::{Ohms, Seconds, Siemens};
use resipe_reram::aging::AgingStep;
use resipe_reram::device::ResistanceWindow;
use resipe_reram::faults::{CellFault, FaultMap, RetentionDrift};
use resipe_reram::quantize::Quantizer;
use resipe_reram::variation::VariationModel;

use crate::config::ResipeConfig;
use crate::engine::ResipeEngine;
use crate::error::ResipeError;

/// Maximum wordlines per tile — the paper's 32×32 array.
pub const PAPER_TILE_ROWS: usize = 32;

/// How a normalized activation `a ∈ \[0, 1\]` becomes an input spike time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SpikeEncoding {
    /// Raw single-spiking format: `t = a · t_max` (paper Sec. III-A). The
    /// sampled voltage `f(a·t_max)` is a concave distortion of `a`.
    #[default]
    LinearTime,
    /// Spike produced by an upstream ReSiPE stage: `t = f⁻¹(a · V_ref)`,
    /// so the sampled voltage is exactly `a · V_ref` (`V_ref = f(t_max)`).
    PassThrough,
}

/// The concave activation distortion of the raw time encoding:
/// `ã(a) = f(a·t_max) / f(t_max)`.
///
/// This is *the* non-linearity of Fig. 7's σ = 0 case once the calibration
/// cancellation is accounted for.
///
/// # Panics
///
/// Panics in debug builds if `a` is outside `\[0, 1\]`.
pub fn linear_time_distortion(config: &ResipeConfig, a: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&a), "activation {a} outside [0, 1]");
    let tau = config.tau_gd().0;
    let t_max = config.t_max().0;
    let v_ref = 1.0 - (-t_max / tau).exp();
    (1.0 - (-a * t_max / tau).exp()) / v_ref
}

/// Configures how weights are lowered onto crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileMapper {
    window: ResistanceWindow,
    access_resistance: Ohms,
    max_rows: usize,
    quantizer: Option<Quantizer>,
    spare_cols: usize,
}

impl TileMapper {
    /// The paper's setup: recommended 50 kΩ–1 MΩ window, 1 kΩ access
    /// transistor, 32-row tiles, analog (unquantized) programming, no
    /// spare columns.
    pub fn paper() -> TileMapper {
        TileMapper {
            window: ResistanceWindow::RECOMMENDED,
            access_resistance: resipe_reram::crossbar::DEFAULT_ACCESS_RESISTANCE,
            max_rows: PAPER_TILE_ROWS,
            quantizer: None,
            spare_cols: 0,
        }
    }

    /// Sets the cell resistance window.
    pub fn with_window(mut self, window: ResistanceWindow) -> TileMapper {
        self.window = window;
        self
    }

    /// Sets the access-transistor series resistance.
    pub fn with_access_resistance(mut self, r: Ohms) -> TileMapper {
        self.access_resistance = r;
        self
    }

    /// Sets the maximum wordlines per tile, rejecting zero.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidOptions`] if `rows` is zero.
    pub fn try_with_max_rows(mut self, rows: usize) -> Result<TileMapper, ResipeError> {
        if rows == 0 {
            return Err(ResipeError::InvalidOptions {
                reason: "tile mapper max_rows must be nonzero".into(),
            });
        }
        self.max_rows = rows;
        Ok(self)
    }

    /// Maximum wordlines per tile.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Quantizes programmed conductances to a multi-level cell.
    pub fn with_quantizer(mut self, q: Quantizer) -> TileMapper {
        self.quantizer = Some(q);
        self
    }

    /// Reserves `n` spare bitlines per tile for column-remap repair. The
    /// spares are programmed to zero weight at compile time and only
    /// activated when the repair ladder remaps a failing column onto one.
    pub fn with_spare_cols(mut self, n: usize) -> TileMapper {
        self.spare_cols = n;
        self
    }

    /// Spare bitlines reserved per tile.
    pub fn spare_cols(&self) -> usize {
        self.spare_cols
    }

    /// The cell resistance window.
    pub fn window(&self) -> ResistanceWindow {
        self.window
    }

    /// Maps a row-major weight matrix into tiled differential conductance
    /// arrays.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] for a shape mismatch or
    /// [`ResipeError::Reram`] for non-finite weights.
    pub fn map(
        &self,
        weights: &[f64],
        rows: usize,
        cols: usize,
    ) -> Result<MappedWeights, ResipeError> {
        if weights.len() != rows * cols || rows == 0 || cols == 0 {
            return Err(ResipeError::DimensionMismatch {
                expected: rows * cols,
                got: weights.len(),
            });
        }
        let w_absmax = weights
            .iter()
            .try_fold(0.0_f64, |acc, &w| {
                if !w.is_finite() {
                    Err(ResipeError::Reram(
                        resipe_reram::ReramError::InvalidFraction { value: w },
                    ))
                } else {
                    Ok(acc.max(w.abs()))
                }
            })?
            .max(f64::MIN_POSITIVE);

        let g_min = self.window.g_min().0;
        let g_max = self.window.g_max().0;
        let delta_g = g_max - g_min;
        let r_acc = self.access_resistance.0;

        let phys_cols = cols + self.spare_cols;
        let mut tiles = Vec::new();
        let mut row_start = 0;
        while row_start < rows {
            let tile_rows = (rows - row_start).min(self.max_rows);
            let mut cell_plus = Vec::with_capacity(tile_rows * phys_cols);
            let mut cell_minus = Vec::with_capacity(tile_rows * phys_cols);
            for r in 0..tile_rows {
                for c in 0..phys_cols {
                    if c >= cols {
                        // Spare bitline: zero weight until a remap claims it.
                        cell_plus.push(g_min);
                        cell_minus.push(g_min);
                        continue;
                    }
                    let w = weights[(row_start + r) * cols + c];
                    let mut fp = w.max(0.0) / w_absmax;
                    let mut fm = (-w).max(0.0) / w_absmax;
                    if let Some(q) = self.quantizer {
                        fp = q.quantize(fp).expect("fraction in range");
                        fm = q.quantize(fm).expect("fraction in range");
                    }
                    cell_plus.push(g_min + fp * delta_g);
                    cell_minus.push(g_min + fm * delta_g);
                }
            }
            tiles.push(Tile::new(
                tile_rows, cols, phys_cols, cell_plus, cell_minus, r_acc,
            ));
            row_start += tile_rows;
        }

        // End-to-end effective conductance swing, used as the decode scale.
        let eff = |g_cell: f64| 1.0 / (1.0 / g_cell + r_acc);
        let delta_g_eff = eff(g_max) - eff(g_min);

        Ok(MappedWeights {
            rows,
            cols,
            tiles,
            weight_scale: w_absmax,
            delta_g_eff: Siemens(delta_g_eff),
            window: self.window,
            access_resistance: self.access_resistance,
            time_quantum: None,
        })
    }
}

impl Default for TileMapper {
    fn default() -> TileMapper {
        TileMapper::paper()
    }
}

/// One crossbar tile of a differential pair: nominal cell conductances,
/// the derived effective (access-transistor-inclusive) conductances, and
/// the design-time column sums the peripheral decodes with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    pub(crate) rows: usize,
    /// Logical (weight-matrix) columns.
    pub(crate) cols: usize,
    /// Physical bitlines: logical columns plus reserved spares.
    pub(crate) phys_cols: usize,
    pub(crate) cell_plus: Vec<f64>,
    pub(crate) cell_minus: Vec<f64>,
    pub(crate) eff_plus: Vec<f64>,
    pub(crate) eff_minus: Vec<f64>,
    /// Column-major (SoA) mirror of `eff_plus`/`eff_minus`:
    /// `phys_cols` contiguous runs of `rows` entries, maintained by
    /// [`Tile::recompute_eff`] alongside the row-major arrays. This is
    /// the layout the inference hot path streams — each bitline's
    /// conductances are one unit-stride slice.
    pub(crate) eff_plus_cm: Vec<f64>,
    pub(crate) eff_minus_cm: Vec<f64>,
    /// Nominal per-physical-column effective conductance sums (decode
    /// constants, fixed from the design targets — NOT updated by process
    /// variation; refreshed only when repair rewrites the targets).
    pub(crate) gsum_plus: Vec<f64>,
    pub(crate) gsum_minus: Vec<f64>,
    /// Static comparator input offsets per physical column (volts), drawn
    /// once per compiled instance — the COG's dominant analog mismatch.
    pub(crate) offset_plus: Vec<f64>,
    pub(crate) offset_minus: Vec<f64>,
    pub(crate) access_resistance: f64,
    /// Design-time target cell conductances — what write–verify repair
    /// programs toward and what BIST expects to observe.
    pub(crate) target_plus: Vec<f64>,
    pub(crate) target_minus: Vec<f64>,
    /// Persistent stuck-at faults of the two physical arrays.
    pub(crate) fault_plus: FaultMap,
    pub(crate) fault_minus: FaultMap,
    /// Logical column → physical bitline (changed by spare remapping).
    pub(crate) col_map: Vec<usize>,
    /// Physical wordline → logical tile row driving it (changed by
    /// fault-aware row permutation).
    pub(crate) row_source: Vec<usize>,
    /// Spare bitlines consumed by remaps.
    pub(crate) spares_used: usize,
}

impl Tile {
    fn new(
        rows: usize,
        cols: usize,
        phys_cols: usize,
        cell_plus: Vec<f64>,
        cell_minus: Vec<f64>,
        access_resistance: f64,
    ) -> Tile {
        let target_plus = cell_plus.clone();
        let target_minus = cell_minus.clone();
        let mut tile = Tile {
            rows,
            cols,
            phys_cols,
            cell_plus,
            cell_minus,
            eff_plus: Vec::new(),
            eff_minus: Vec::new(),
            eff_plus_cm: Vec::new(),
            eff_minus_cm: Vec::new(),
            gsum_plus: Vec::new(),
            gsum_minus: Vec::new(),
            offset_plus: vec![0.0; phys_cols],
            offset_minus: vec![0.0; phys_cols],
            access_resistance,
            target_plus,
            target_minus,
            fault_plus: FaultMap::healthy(rows, phys_cols),
            fault_minus: FaultMap::healthy(rows, phys_cols),
            col_map: (0..cols).collect(),
            row_source: (0..rows).collect(),
            spares_used: 0,
        };
        tile.recompute_eff();
        tile.recompute_design_gsums();
        tile
    }

    /// Wordlines in this tile.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical (weight-matrix) columns in this tile.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Physical bitlines (logical columns + spares).
    pub fn physical_cols(&self) -> usize {
        self.phys_cols
    }

    /// Spare bitlines reserved in this tile.
    pub fn spare_cols(&self) -> usize {
        self.phys_cols - self.cols
    }

    /// Spare bitlines already consumed by remaps.
    pub fn spares_used(&self) -> usize {
        self.spares_used
    }

    /// The logical-column → physical-bitline routing.
    pub fn col_map(&self) -> &[usize] {
        &self.col_map
    }

    /// `true` once the repair ladder has applied a row permutation.
    pub fn is_permuted(&self) -> bool {
        self.row_source.iter().enumerate().any(|(p, &l)| p != l)
    }

    /// The stuck-at map of the positive array.
    pub fn fault_plus(&self) -> &FaultMap {
        &self.fault_plus
    }

    /// The stuck-at map of the negative array.
    pub fn fault_minus(&self) -> &FaultMap {
        &self.fault_minus
    }

    /// The effective positive-array conductances, row-major over physical
    /// bitlines.
    pub fn eff_plus(&self) -> &[f64] {
        &self.eff_plus
    }

    /// The effective negative-array conductances, row-major over physical
    /// bitlines.
    pub fn eff_minus(&self) -> &[f64] {
        &self.eff_minus
    }

    /// The effective positive-array conductances, column-major: physical
    /// bitline `c` is the contiguous slice `[c * rows .. (c + 1) * rows]`.
    pub fn eff_plus_cm(&self) -> &[f64] {
        &self.eff_plus_cm
    }

    /// The effective negative-array conductances, column-major (see
    /// [`Tile::eff_plus_cm`]).
    pub fn eff_minus_cm(&self) -> &[f64] {
        &self.eff_minus_cm
    }

    /// Recomputes the effective conductances from the cell conductances —
    /// the single maintenance point for both layouts: the column-major
    /// mirror is a pure transpose of values already computed, so the two
    /// layouts hold bit-equal entries.
    pub(crate) fn recompute_eff(&mut self) {
        let r_acc = self.access_resistance;
        let eff = |g: &f64| 1.0 / (1.0 / *g + r_acc);
        self.eff_plus = self.cell_plus.iter().map(eff).collect();
        self.eff_minus = self.cell_minus.iter().map(eff).collect();
        let transpose = |rm: &[f64]| -> Vec<f64> {
            let mut cm = vec![0.0; rm.len()];
            for r in 0..self.rows {
                for c in 0..self.phys_cols {
                    cm[c * self.rows + r] = rm[r * self.phys_cols + c];
                }
            }
            cm
        };
        self.eff_plus_cm = transpose(&self.eff_plus);
        self.eff_minus_cm = transpose(&self.eff_minus);
    }

    /// Recomputes the nominal decode constants from the design targets
    /// (the peripheral always decodes with the *intended* column sums).
    pub(crate) fn recompute_design_gsums(&mut self) {
        let r_acc = self.access_resistance;
        let eff = |g: f64| 1.0 / (1.0 / g + r_acc);
        let col_sums = |m: &[f64]| -> Vec<f64> {
            let mut sums = vec![0.0; self.phys_cols];
            for r in 0..self.rows {
                for (c, s) in sums.iter_mut().enumerate() {
                    *s += eff(m[r * self.phys_cols + c]);
                }
            }
            sums
        };
        self.gsum_plus = col_sums(&self.target_plus);
        self.gsum_minus = col_sums(&self.target_minus);
    }

    /// Pins stuck cells to their fault conductance and refreshes the
    /// effective conductances. Idempotent.
    pub(crate) fn pin_faults(&mut self, window: ResistanceWindow) {
        for (cells, map) in [
            (&mut self.cell_plus, &self.fault_plus),
            (&mut self.cell_minus, &self.fault_minus),
        ] {
            for (r, c, fault) in map.stuck_cells() {
                if let Some(g) = fault.stuck_conductance(window) {
                    cells[r * self.phys_cols + c] = g.0;
                }
            }
        }
        self.recompute_eff();
    }
}

/// A weight matrix lowered onto tiled differential crossbar pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappedWeights {
    rows: usize,
    cols: usize,
    tiles: Vec<Tile>,
    weight_scale: f64,
    delta_g_eff: Siemens,
    window: ResistanceWindow,
    access_resistance: Ohms,
    /// Optional spike-time quantization grid (the pulse-width limit on
    /// timing resolution); `None` models ideal continuous timing.
    time_quantum: Option<f64>,
}

impl MappedWeights {
    /// Logical input dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical output dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The row tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of physical crossbar MVMs per logical forward pass
    /// (tiles × 2 for the differential pair).
    pub fn mvms_per_forward(&self) -> usize {
        self.tiles.len() * 2
    }

    /// The `max |w|` normalization constant.
    pub fn weight_scale(&self) -> f64 {
        self.weight_scale
    }

    /// Quantizes every observed output spike time to a `quantum` grid —
    /// the pulse-width limit on timing resolution (the paper's 1 ns pulse
    /// over a 100 ns slice resolves ~100 levels).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not positive and finite.
    pub fn with_time_quantization(mut self, quantum: Seconds) -> MappedWeights {
        assert!(
            quantum.0 > 0.0 && quantum.0.is_finite(),
            "time quantum must be positive and finite"
        );
        self.time_quantum = Some(quantum.0);
        self
    }

    /// Draws static per-column comparator input offsets with standard
    /// deviation `sigma_volts` — the COG's dominant analog mismatch,
    /// fixed per fabricated instance. The digital decode does not know
    /// the offsets, so they reach the output as systematic error.
    ///
    /// Each tile draws from its own [`crate::seeds::substream`] of
    /// `base_seed`, so the offsets of any tile are independent of how
    /// many tiles precede it (the per-tile determinism contract).
    pub fn with_comparator_offsets(mut self, sigma_volts: f64, base_seed: u64) -> MappedWeights {
        assert!(
            sigma_volts >= 0.0 && sigma_volts.is_finite(),
            "offset sigma must be non-negative and finite"
        );
        use resipe_reram::variation::standard_normal;
        for (ti, tile) in self.tiles.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(crate::seeds::substream(base_seed, ti as u64));
            for offs in [&mut tile.offset_plus, &mut tile.offset_minus] {
                for o in offs.iter_mut() {
                    *o = sigma_volts * standard_normal(&mut rng);
                }
            }
        }
        self
    }

    /// Executes one logical MVM on the engine: normalized activations
    /// `a ∈ \[0, 1\]` in, dot products `y_j ≈ Σ_i a_i w_ij` out.
    ///
    /// Activations outside `\[0, 1\]` are clamped (the spike encoder cannot
    /// represent them), mirroring the hardware's input range limit.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == rows`.
    pub fn forward(
        &self,
        engine: &ResipeEngine,
        activations: &[f64],
        encoding: SpikeEncoding,
    ) -> Result<Vec<f64>, ResipeError> {
        if activations.len() != self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: self.rows,
                got: activations.len(),
            });
        }
        let cfg = engine.config();
        let tau = cfg.tau_gd().0;
        let vs = cfg.vs().0;
        let t_max = cfg.t_max().0;
        let v_ref = vs * (1.0 - (-t_max / tau).exp());

        // Encode activations into spike times.
        let encode = |a: f64| -> Seconds {
            let a = a.clamp(0.0, 1.0);
            match encoding {
                SpikeEncoding::LinearTime => Seconds(a * t_max),
                // t = f⁻¹(a·V_ref) so the sampled voltage is a·V_ref.
                SpikeEncoding::PassThrough => Seconds(-tau * (1.0 - a * v_ref / vs).ln()),
            }
        };

        // Tiles are independent up to the final digital accumulation, so
        // they evaluate in parallel (one MVM pair per tile); the partial
        // results are then summed **in tile order**, giving bit-identical
        // output to the serial loop for any thread count.
        use rayon::prelude::*;
        let tile_offsets: Vec<usize> = self
            .tiles
            .iter()
            .scan(0usize, |start, t| {
                let s = *start;
                *start += t.rows;
                Some(s)
            })
            .collect();
        let partials: Vec<Result<Vec<f64>, ResipeError>> = (0..self.tiles.len())
            .into_par_iter()
            .map(|ti| {
                self.tile_partial(
                    engine,
                    &self.tiles[ti],
                    tile_offsets[ti],
                    activations,
                    &encode,
                )
            })
            .collect();
        let mut acc = vec![0.0f64; self.cols];
        for partial in partials {
            let partial = partial?;
            for (out, p) in acc.iter_mut().zip(&partial) {
                *out += p;
            }
        }
        // Σ V_i ΔG_ij / V_ref · w_scale / Δg_eff ≈ Σ a_i w_ij.
        let scale = self.weight_scale / (v_ref * self.delta_g_eff.0);
        for y in &mut acc {
            *y *= scale;
        }
        Ok(acc)
    }

    /// One tile's contribution to [`MappedWeights::forward`]: the decoded
    /// differential column values (before the global weight rescale).
    fn tile_partial(
        &self,
        engine: &ResipeEngine,
        tile: &Tile,
        row_start: usize,
        activations: &[f64],
        encode: &(dyn Fn(f64) -> Seconds + Sync),
    ) -> Result<Vec<f64>, ResipeError> {
        let cfg = engine.config();
        let tau = cfg.tau_gd().0;
        let vs = cfg.vs().0;
        let dt_over_c = cfg.dt().0 / cfg.c_cog().0;
        let mut acc = vec![0.0f64; self.cols];
        {
            // Each physical wordline is driven by the logical tile row the
            // (possibly repair-permuted) routing assigns to it.
            let t_in: Vec<Seconds> = tile
                .row_source
                .iter()
                .map(|&l| encode(activations[row_start + l]))
                .collect();
            // The SoA (column-major) kernel: contiguous per-bitline
            // streams, bit-identical to the row-major `mvm_matrix`.
            let plus = engine.mvm_matrix_cm(&tile.eff_plus_cm, tile.rows, tile.phys_cols, &t_in)?;
            let minus =
                engine.mvm_matrix_cm(&tile.eff_minus_cm, tile.rows, tile.phys_cols, &t_in)?;
            let slice = engine.config().slice().0;
            for (j, out) in acc.iter_mut().enumerate().take(tile.cols) {
                // The comparator fires when the ramp crosses V_out plus
                // its (unknown to the decode) input offset; the observed
                // time is then optionally quantized to the pulse-width
                // grid. Reconstruct the voltage from that observed time
                // and divide out the known nominal column constant k_j.
                let decode_column = |v_out: f64, offset: f64, gsum_nom: f64| -> f64 {
                    let v_eff = (v_out + offset).clamp(0.0, vs * (1.0 - 1e-12));
                    let mut t_obs = -tau * (1.0 - v_eff / vs).ln();
                    if let Some(q) = self.time_quantum {
                        t_obs = (t_obs / q).round() * q;
                    }
                    let t_obs = t_obs.min(slice);
                    let v_hat = vs * (1.0 - (-t_obs / tau).exp());
                    let k = (1.0 - (-dt_over_c * gsum_nom).exp()) / gsum_nom;
                    v_hat / k
                };
                let pc = tile.col_map[j];
                let d_plus =
                    decode_column(plus[pc].v_out.0, tile.offset_plus[pc], tile.gsum_plus[pc]);
                let d_minus = decode_column(
                    minus[pc].v_out.0,
                    tile.offset_minus[pc],
                    tile.gsum_minus[pc],
                );
                *out += d_plus - d_minus;
            }
        }
        Ok(acc)
    }

    /// The ideal dot products using the *reconstructed* weights (what a
    /// perfect linear engine would compute on the programmed
    /// conductances) — the reference for non-linearity measurements.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == rows`.
    pub fn forward_ideal(&self, activations: &[f64]) -> Result<Vec<f64>, ResipeError> {
        if activations.len() != self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: self.rows,
                got: activations.len(),
            });
        }
        let mut acc = vec![0.0f64; self.cols];
        let scale = self.weight_scale / self.delta_g_eff.0;
        let mut row_start = 0;
        for tile in &self.tiles {
            for (p, &l) in tile.row_source.iter().enumerate() {
                let a = activations[row_start + l].clamp(0.0, 1.0);
                if a == 0.0 {
                    continue;
                }
                for (j, y) in acc.iter_mut().enumerate() {
                    let pc = tile.col_map[j];
                    let dg = tile.eff_plus[p * tile.phys_cols + pc]
                        - tile.eff_minus[p * tile.phys_cols + pc];
                    *y += a * dg * scale;
                }
            }
            row_start += tile.rows;
        }
        Ok(acc)
    }

    /// Draws a Monte-Carlo process-variation instance: every cell's
    /// nominal conductance is independently perturbed and the effective
    /// conductances recomputed. The decode constants stay at their
    /// design-time values — the peripheral does not know the actual
    /// perturbed conductances, which is how PV reaches the output.
    ///
    /// Each tile draws from its own [`crate::seeds::substream`] of
    /// `base_seed`, which makes the instance a pure function of
    /// `(base_seed, tile index)` rather than of tile visit order — so the
    /// tiles can be perturbed in parallel with a bit-identical result.
    pub fn perturbed(&self, model: &VariationModel, base_seed: u64) -> MappedWeights {
        use rayon::prelude::*;
        let mut out = self.clone();
        let window = self.window;
        let tiles: Vec<Tile> = (0..self.tiles.len())
            .into_par_iter()
            .map(|ti| {
                let mut tile = self.tiles[ti].clone();
                let mut rng = StdRng::seed_from_u64(crate::seeds::substream(base_seed, ti as u64));
                for cells in [&mut tile.cell_plus, &mut tile.cell_minus] {
                    for g in cells.iter_mut() {
                        *g = model.perturb(Siemens(*g), window, &mut rng).0;
                    }
                }
                // Stuck cells ignore programming noise; re-pin them (this
                // also recomputes the effective conductances).
                tile.pin_faults(window);
                // gsum_plus/gsum_minus intentionally NOT recomputed.
                tile
            })
            .collect();
        out.tiles = tiles;
        out
    }

    /// Injects seeded spatially-clustered stuck-at faults into every tile
    /// (independent maps for the positive and negative arrays) and pins
    /// the affected cells. Decode constants stay at their design values —
    /// the peripheral does not know which cells are stuck.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::Reram`] if the fault parameters are invalid.
    pub fn with_faults(
        mut self,
        rate: f64,
        cluster_size: usize,
        seed: u64,
    ) -> Result<MappedWeights, ResipeError> {
        for (i, tile) in self.tiles.iter_mut().enumerate() {
            let base = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            tile.fault_plus =
                FaultMap::clustered(tile.rows, tile.phys_cols, rate, cluster_size, base)?;
            tile.fault_minus =
                FaultMap::clustered(tile.rows, tile.phys_cols, rate, cluster_size, base ^ 0x5a5a)?;
            tile.pin_faults(self.window);
        }
        Ok(self)
    }

    /// Installs explicit fault maps on one tile (targeted fault injection
    /// for campaigns and tests) and pins the affected cells. Both maps
    /// must match the tile's physical geometry
    /// (`rows × physical_cols`). Decode constants stay at their design
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] if `tile_index` is out of
    /// range or either map's geometry does not match the tile.
    pub fn with_fault_maps(
        mut self,
        tile_index: usize,
        plus: FaultMap,
        minus: FaultMap,
    ) -> Result<MappedWeights, ResipeError> {
        let window = self.window;
        let n_tiles = self.tiles.len();
        let tile = self
            .tiles
            .get_mut(tile_index)
            .ok_or_else(|| ResipeError::InvalidConfig {
                reason: format!("tile index {tile_index} out of range ({n_tiles} tiles)"),
            })?;
        for map in [&plus, &minus] {
            if map.rows() != tile.rows || map.cols() != tile.phys_cols {
                return Err(ResipeError::InvalidConfig {
                    reason: format!(
                        "fault map {}x{} does not match tile geometry {}x{}",
                        map.rows(),
                        map.cols(),
                        tile.rows,
                        tile.phys_cols
                    ),
                });
            }
        }
        tile.fault_plus = plus;
        tile.fault_minus = minus;
        tile.pin_faults(window);
        Ok(self)
    }

    /// Applies retention drift: every cell conductance relaxes toward the
    /// HRS floor with time constant `drift.tau()`, after which stuck cells
    /// are re-pinned. Decode constants stay at their design values.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::Reram`] if `elapsed` is negative or not
    /// finite.
    pub fn with_retention_drift(
        mut self,
        drift: &RetentionDrift,
        elapsed: Seconds,
    ) -> Result<MappedWeights, ResipeError> {
        let window = self.window;
        for tile in &mut self.tiles {
            for (cells, map) in [
                (&mut tile.cell_plus, &tile.fault_plus),
                (&mut tile.cell_minus, &tile.fault_minus),
            ] {
                drift.age_and_reassert_values(cells, window, elapsed, map)?;
            }
            tile.recompute_eff();
        }
        Ok(self)
    }

    /// Applies one [`AgingStep`] of live-traffic aging in place:
    /// endurance wear events strike deterministically-chosen cells
    /// stuck-at-LRS, then every cell relaxes by the step's retention
    /// drift over its elapsed virtual time, with stuck cells re-pinned.
    /// Decode constants stay at their design values — aging is invisible
    /// to the peripheral, which is exactly why accuracy degrades until a
    /// repair reprograms the drifted cells back toward their targets.
    ///
    /// Each wear event's placement is a pure function of the step's
    /// `(seed, event index)` — independent of how the request stream was
    /// chunked into steps and of tile visit order.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::Reram`] if the step's elapsed time is
    /// invalid.
    pub fn age(&mut self, step: &AgingStep) -> Result<(), ResipeError> {
        // Endurance wear: global event k picks one physical cell across
        // the whole mapped layer (both arrays of every tile).
        let geometry: Vec<(usize, usize)> =
            self.tiles.iter().map(|t| (t.rows, t.phys_cols)).collect();
        let total_cells: usize = geometry.iter().map(|&(r, c)| 2 * r * c).sum();
        if total_cells > 0 {
            for event in step.wear_events() {
                let mut rng = StdRng::seed_from_u64(step.wear_event_seed(event));
                let mut flat = rng.gen_range(0..total_cells);
                for (ti, &(rows, cols)) in geometry.iter().enumerate() {
                    let per_array = rows * cols;
                    if flat >= 2 * per_array {
                        flat -= 2 * per_array;
                        continue;
                    }
                    let tile = &mut self.tiles[ti];
                    let map = if flat < per_array {
                        &mut tile.fault_plus
                    } else {
                        flat -= per_array;
                        &mut tile.fault_minus
                    };
                    let (r, c) = (flat / cols, flat % cols);
                    if map.fault(r, c) == CellFault::Healthy {
                        map.set(r, c, CellFault::StuckLrs);
                    }
                    break;
                }
            }
        }
        // Retention drift with automatic stuck-cell re-pinning (also
        // pins any cells the wear loop above just struck).
        let window = self.window;
        for tile in &mut self.tiles {
            for (cells, map) in [
                (&mut tile.cell_plus, &tile.fault_plus),
                (&mut tile.cell_minus, &tile.fault_minus),
            ] {
                step.drift()
                    .age_and_reassert_values(cells, window, step.elapsed(), map)?;
            }
            tile.recompute_eff();
        }
        Ok(())
    }

    /// The cell resistance window the weights were mapped with.
    pub fn window(&self) -> ResistanceWindow {
        self.window
    }

    /// Fraction of cells (across both arrays of every tile) that are
    /// stuck.
    pub fn fault_rate(&self) -> f64 {
        let mut stuck = 0usize;
        let mut total = 0usize;
        for tile in &self.tiles {
            stuck += tile.fault_plus.fault_count() + tile.fault_minus.fault_count();
            total += 2 * tile.rows * tile.phys_cols;
        }
        if total == 0 {
            0.0
        } else {
            stuck as f64 / total as f64
        }
    }

    pub(crate) fn tiles_mut(&mut self) -> &mut [Tile] {
        &mut self.tiles
    }

    /// The effective conductance swing used as the decode scale.
    pub(crate) fn delta_g_eff(&self) -> Siemens {
        self.delta_g_eff
    }

    /// The optional spike-time quantization grid (seconds).
    pub(crate) fn time_quantum(&self) -> Option<f64> {
        self.time_quantum
    }

    /// Reconstructs the logical weight at `(row, col)` from the programmed
    /// conductances.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn reconstruct_weight(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        let mut row_start = 0;
        for tile in &self.tiles {
            if row < row_start + tile.rows {
                let l = row - row_start;
                let p = tile
                    .row_source
                    .iter()
                    .position(|&src| src == l)
                    .expect("row routing is a permutation");
                let pc = tile.col_map[col];
                let idx = p * tile.phys_cols + pc;
                let dg = tile.eff_plus[idx] - tile.eff_minus[idx];
                return dg * self.weight_scale / self.delta_g_eff.0;
            }
            row_start += tile.rows;
        }
        unreachable!("tiles cover all rows");
    }
}

/// Convenience: build a [`ResipeEngine`] + [`TileMapper`] pair from one
/// configuration (the common case in examples and benches).
pub fn paper_stack(config: ResipeConfig) -> Result<(ResipeEngine, TileMapper), ResipeError> {
    Ok((ResipeEngine::try_new(config)?, TileMapper::paper()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> ResipeEngine {
        ResipeEngine::new(ResipeConfig::paper())
    }

    #[test]
    fn small_matrix_round_trip() {
        let weights = vec![0.5, -1.0, 0.25, 0.0, 0.75, -0.5];
        let mapped = TileMapper::paper().map(&weights, 3, 2).unwrap();
        assert_eq!(mapped.rows(), 3);
        assert_eq!(mapped.cols(), 2);
        assert_eq!(mapped.tiles().len(), 1);
        for r in 0..3 {
            for c in 0..2 {
                let w = mapped.reconstruct_weight(r, c);
                let expected = weights[r * 2 + c];
                // Access-resistance concavity introduces a small error.
                assert!((w - expected).abs() < 0.05, "({r},{c}): {w} vs {expected}");
            }
        }
    }

    #[test]
    fn tiling_splits_rows() {
        let mapper = TileMapper::paper().try_with_max_rows(8).unwrap();
        let mapped = mapper.map(&vec![0.1; 20 * 3], 20, 3).unwrap();
        let tile_rows: Vec<usize> = mapped.tiles().iter().map(Tile::rows).collect();
        assert_eq!(tile_rows, vec![8, 8, 4]);
        assert_eq!(mapped.mvms_per_forward(), 6);
    }

    #[test]
    fn zero_tile_rows_rejected_without_panic() {
        let err = TileMapper::paper().try_with_max_rows(0).unwrap_err();
        assert!(matches!(err, ResipeError::InvalidOptions { .. }), "{err}");
        assert_eq!(
            TileMapper::paper().try_with_max_rows(8).unwrap().max_rows(),
            8
        );
    }

    #[test]
    fn forward_ideal_matches_dot_product() {
        let weights = vec![0.5, -0.5, 1.0, 0.25];
        let mapped = TileMapper::paper()
            .with_access_resistance(Ohms(1e-6))
            .map(&weights, 2, 2)
            .unwrap();
        let a = [0.8, 0.4];
        let y = mapped.forward_ideal(&a).unwrap();
        let expected = [0.8 * 0.5 + 0.4 * 1.0, 0.8 * -0.5 + 0.4 * 0.25];
        for (got, exp) in y.iter().zip(&expected) {
            assert!((got - exp).abs() < 1e-6, "{got} vs {exp}");
        }
    }

    #[test]
    fn pass_through_forward_is_nearly_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights: Vec<f64> = (0..32 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 32, 4).unwrap();
        let a: Vec<f64> = (0..32).map(|_| rng.gen_range(0.0..1.0)).collect();
        let hw = mapped
            .forward(&engine(), &a, SpikeEncoding::PassThrough)
            .unwrap();
        let ideal = mapped.forward_ideal(&a).unwrap();
        let ref_mag = ideal.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-9);
        for (h, i) in hw.iter().zip(&ideal) {
            assert!(
                (h - i).abs() / ref_mag < 5e-3,
                "hw {h} vs ideal {i} (ref {ref_mag})"
            );
        }
    }

    #[test]
    fn linear_time_forward_matches_distorted_ideal() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights: Vec<f64> = (0..32 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 32, 4).unwrap();
        let a: Vec<f64> = (0..32).map(|_| rng.gen_range(0.0..1.0)).collect();
        let cfg = ResipeConfig::paper();
        let distorted: Vec<f64> = a.iter().map(|&x| linear_time_distortion(&cfg, x)).collect();
        let hw = mapped
            .forward(&engine(), &a, SpikeEncoding::LinearTime)
            .unwrap();
        let ideal_distorted = mapped.forward_ideal(&distorted).unwrap();
        let ref_mag = ideal_distorted
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-9);
        for (h, i) in hw.iter().zip(&ideal_distorted) {
            assert!(
                (h - i).abs() / ref_mag < 5e-3,
                "hw {h} vs distorted ideal {i}"
            );
        }
    }

    #[test]
    fn distortion_is_concave_and_normalized() {
        let cfg = ResipeConfig::paper();
        assert!(linear_time_distortion(&cfg, 0.0).abs() < 1e-12);
        assert!((linear_time_distortion(&cfg, 1.0) - 1.0).abs() < 1e-12);
        // Concavity: midpoint above the chord.
        let mid = linear_time_distortion(&cfg, 0.5);
        assert!(mid > 0.5, "ã(0.5) = {mid}");
        // Monotone.
        let mut prev = -1.0;
        for i in 0..=20 {
            let v = linear_time_distortion(&cfg, i as f64 / 20.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn all_zero_activations_give_zero() {
        let mapped = TileMapper::paper().map(&[0.5, -0.5], 2, 1).unwrap();
        for enc in [SpikeEncoding::LinearTime, SpikeEncoding::PassThrough] {
            let y = mapped.forward(&engine(), &[0.0, 0.0], enc).unwrap();
            assert!(y[0].abs() < 1e-9, "got {} for {enc:?}", y[0]);
        }
    }

    #[test]
    fn perturbed_changes_effective_conductances() {
        let mapped = TileMapper::paper()
            .map(&[0.5, -0.5, 0.1, 0.9], 2, 2)
            .unwrap();
        let model = VariationModel::device_to_device(0.2).unwrap();
        let noisy = mapped.perturbed(&model, 2);
        assert_ne!(noisy, mapped);
        // Same seed, same instance (per-tile substreams are pure functions
        // of the base seed).
        assert_eq!(noisy, mapped.perturbed(&model, 2));
        // Ideal variation keeps it identical.
        let same = mapped.perturbed(&VariationModel::IDEAL, 2);
        assert_eq!(same, mapped);
    }

    #[test]
    fn perturbation_shifts_hardware_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 16, 1).unwrap();
        let a: Vec<f64> = (0..16).map(|_| rng.gen_range(0.2..0.9)).collect();
        let e = engine();
        let clean = mapped.forward(&e, &a, SpikeEncoding::PassThrough).unwrap()[0];
        let model = VariationModel::device_to_device(0.2).unwrap();
        let noisy = mapped.perturbed(&model, 3);
        let shifted = noisy.forward(&e, &a, SpikeEncoding::PassThrough).unwrap()[0];
        assert!((clean - shifted).abs() > 1e-6, "PV must move the output");
    }

    #[test]
    fn quantized_mapping_changes_weights() {
        let q = Quantizer::new(2).unwrap();
        let analog = TileMapper::paper().map(&[0.4, -0.6], 2, 1).unwrap();
        let quantized = TileMapper::paper()
            .with_quantizer(q)
            .map(&[0.4, -0.6], 2, 1)
            .unwrap();
        assert_ne!(analog, quantized);
        // Binary cell: 0.4/0.6 -> fraction 2/3 -> rounds to 1.0 -> weight
        // reconstructs near ±0.6.
        let w0 = quantized.reconstruct_weight(0, 0);
        assert!((w0 - 0.6).abs() < 0.05, "w0 {w0}");
    }

    #[test]
    fn validation_errors() {
        let mapper = TileMapper::paper();
        assert!(mapper.map(&[0.0; 5], 2, 2).is_err());
        assert!(mapper.map(&[f64::NAN, 0.0], 2, 1).is_err());
        let mapped = mapper.map(&[0.5; 4], 2, 2).unwrap();
        assert!(mapped
            .forward(&engine(), &[0.1], SpikeEncoding::LinearTime)
            .is_err());
        assert!(mapped.forward_ideal(&[0.1, 0.2, 0.3]).is_err());
    }

    #[test]
    fn out_of_range_activations_clamp() {
        let mapped = TileMapper::paper().map(&[1.0], 1, 1).unwrap();
        let e = engine();
        let over = mapped
            .forward(&e, &[1.5], SpikeEncoding::LinearTime)
            .unwrap();
        let at_one = mapped
            .forward(&e, &[1.0], SpikeEncoding::LinearTime)
            .unwrap();
        assert!((over[0] - at_one[0]).abs() < 1e-12);
    }

    #[test]
    fn time_quantization_coarsens_output() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 16, 1).unwrap();
        let a: Vec<f64> = (0..16).map(|_| rng.gen_range(0.1..0.9)).collect();
        let e = engine();
        let exact = mapped.forward(&e, &a, SpikeEncoding::PassThrough).unwrap()[0];
        // A very coarse 10 ns grid must visibly move the output; a 1 fs
        // grid must not.
        let coarse = mapped
            .clone()
            .with_time_quantization(Seconds(10e-9))
            .forward(&e, &a, SpikeEncoding::PassThrough)
            .unwrap()[0];
        let fine = mapped
            .clone()
            .with_time_quantization(Seconds(1e-15))
            .forward(&e, &a, SpikeEncoding::PassThrough)
            .unwrap()[0];
        assert!((exact - fine).abs() < 1e-6, "fine grid {fine} vs {exact}");
        assert!((exact - coarse).abs() > 1e-4, "coarse grid had no effect");
    }

    #[test]
    fn aging_is_chunking_invariant_and_degrades_output() {
        use resipe_reram::aging::{AgingClock, AgingConfig};
        use resipe_reram::faults::RetentionDrift;
        let mut rng = StdRng::seed_from_u64(9);
        let weights: Vec<f64> = (0..32 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 32, 4).unwrap();
        let cfg = AgingConfig::new(Seconds(10.0), RetentionDrift::new(Seconds(1e4)).unwrap())
            .unwrap()
            .with_wear_per_request(0.002)
            .unwrap()
            .with_seed(17);

        // One big step vs. the same requests in uneven chunks.
        let mut whole = mapped.clone();
        let mut clock = AgingClock::new(cfg);
        whole.age(&clock.advance(1000).unwrap()).unwrap();

        let mut chunked = mapped.clone();
        let mut clock2 = AgingClock::new(cfg);
        for n in [1u64, 499, 300, 200] {
            chunked.age(&clock2.advance(n).unwrap()).unwrap();
        }
        // The wear schedule (which cells got struck) is *exactly*
        // chunking-invariant; drifted conductances match to FP rounding
        // (chunked decay multiplies exponentials instead of summing
        // exponents).
        assert!(whole.fault_rate() > 0.0, "wear events must strike cells");
        assert_eq!(whole.fault_rate(), chunked.fault_rate());
        for (tw, tc) in whole.tiles().iter().zip(chunked.tiles()) {
            assert_eq!(tw.fault_plus(), tc.fault_plus());
            assert_eq!(tw.fault_minus(), tc.fault_minus());
            for (a, b) in tw.eff_plus().iter().zip(tc.eff_plus()) {
                assert!((a - b).abs() <= 1e-12 * a.abs(), "{a} vs {b}");
            }
            for (a, b) in tw.eff_minus().iter().zip(tc.eff_minus()) {
                assert!((a - b).abs() <= 1e-12 * a.abs(), "{a} vs {b}");
            }
        }

        // Aged hardware produces measurably different (degraded) output.
        let e = engine();
        let a: Vec<f64> = (0..32).map(|_| 0.5).collect();
        let fresh_y = mapped.forward(&e, &a, SpikeEncoding::PassThrough).unwrap();
        let aged_y = whole.forward(&e, &a, SpikeEncoding::PassThrough).unwrap();
        let moved = fresh_y
            .iter()
            .zip(&aged_y)
            .any(|(f, g)| (f - g).abs() > 1e-6);
        assert!(moved, "aging must move the decoded output");
    }

    #[test]
    fn zero_request_aging_never_fires() {
        use resipe_reram::aging::{AgingClock, AgingConfig};
        use resipe_reram::faults::RetentionDrift;
        let cfg =
            AgingConfig::new(Seconds(1.0), RetentionDrift::new(Seconds(1.0)).unwrap()).unwrap();
        let mut clock = AgingClock::new(cfg);
        assert!(clock.advance(0).is_none());
    }

    #[test]
    fn comparator_offsets_shift_output() {
        let weights = vec![0.5, -0.25, 0.75, 0.1];
        let mapped = TileMapper::paper().map(&weights, 4, 1).unwrap();
        let a = [0.5, 0.5, 0.5, 0.5];
        let e = engine();
        let clean = mapped.forward(&e, &a, SpikeEncoding::PassThrough).unwrap()[0];
        let offset = mapped
            .clone()
            .with_comparator_offsets(0.02, 6)
            .forward(&e, &a, SpikeEncoding::PassThrough)
            .unwrap()[0];
        assert!((clean - offset).abs() > 1e-6, "offsets had no effect");
        // Zero sigma leaves the output untouched.
        let zero = mapped
            .clone()
            .with_comparator_offsets(0.0, 7)
            .forward(&e, &a, SpikeEncoding::PassThrough)
            .unwrap()[0];
        assert!((clean - zero).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_time_quantum_panics() {
        let mapped = TileMapper::paper().map(&[1.0], 1, 1).unwrap();
        let _ = mapped.with_time_quantization(Seconds(0.0));
    }

    #[test]
    fn paper_stack_builds() {
        let (e, m) = paper_stack(ResipeConfig::paper()).unwrap();
        assert_eq!(e.config().slice(), ResipeConfig::paper().slice());
        assert_eq!(m.window(), ResistanceWindow::RECOMMENDED);
    }
}
