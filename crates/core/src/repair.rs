//! Online fault detection (BIST) and the tile repair ladder.
//!
//! ReRAM arrays accumulate hard faults — stuck-at cells from endurance
//! wear-out or forming failures, and retention drift that pulls programmed
//! conductances toward HRS. This module provides the defensive layer the
//! paper's architecture implies but does not spell out:
//!
//! 1. **BIST** ([`run_bist`]) — a built-in self-test that fires known
//!    single-spike probes (one wordline at full scale, the rest silent)
//!    through the real spike-domain engine and compares each column's
//!    response against the response the *design-time target* conductances
//!    would produce. Deviations are normalized to one full single-cell
//!    swing at the column output, so a threshold of 1.0 means "as wrong as
//!    one cell flipped across its whole window".
//! 2. **The repair ladder** ([`repair_tile`]) — escalating responses to a
//!    failing column:
//!    * *reprogram*: write–verify the column again with a retry budget,
//!      relaxing the verify tolerance per attempt (transient programming
//!      errors and drift are fixed here; stuck cells only burn pulses);
//!    * *spare remap*: copy the column's targets onto a reserved spare
//!      bitline, program it, and reroute the logical column (spares can
//!      themselves be faulty, in which case the next spare is tried);
//!    * *row permutation*: re-sort the tile's wordline assignment so
//!      large-magnitude logical rows land on the least-faulty physical
//!      rows, then reprogram the whole tile (reverted if it does not
//!      reduce the failing-column count);
//!    * *graceful degradation*: mark the tile degraded and report it —
//!      inference keeps running on the damaged array instead of failing.
//!
//! Every rung accounts its programming pulses and energy so fault-sweep
//! campaigns can report the cost of repair, not just its benefit.

use rand::Rng;
use serde::{Deserialize, Serialize};

use resipe_analog::units::{Joules, Seconds, Siemens};
use resipe_reram::device::{ReramCell, ResistanceWindow};
use resipe_reram::faults::FaultMap;
use resipe_reram::program::{ProgramConfig, Programmer};

use crate::engine::ResipeEngine;
use crate::error::ResipeError;
use crate::mapping::{MappedWeights, Tile};

/// Built-in self-test parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BistConfig {
    /// Per-cell deviation threshold in units of one full single-cell
    /// output swing. Process variation at σ = 10 % lands around 0.1–0.2;
    /// a cell stuck across its window lands at ~1.0.
    pub cell_threshold: f64,
}

impl Default for BistConfig {
    fn default() -> BistConfig {
        BistConfig {
            cell_threshold: 0.4,
        }
    }
}

/// Per-logical-column BIST outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnDiagnosis {
    /// Logical column index in the tile.
    pub logical_col: usize,
    /// Physical bitline currently serving the column.
    pub physical_col: usize,
    /// Worst per-cell deviation observed, in single-cell-swing units.
    pub worst_deviation: f64,
    /// `true` if the worst deviation exceeds the BIST threshold.
    pub failing: bool,
}

/// Result of one BIST pass over a tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BistReport {
    /// One diagnosis per logical column.
    pub columns: Vec<ColumnDiagnosis>,
}

impl BistReport {
    /// Logical columns currently failing.
    pub fn failing_cols(&self) -> Vec<usize> {
        self.columns
            .iter()
            .filter(|c| c.failing)
            .map(|c| c.logical_col)
            .collect()
    }

    /// Number of failing logical columns.
    pub fn failing_count(&self) -> usize {
        self.columns.iter().filter(|c| c.failing).count()
    }

    /// `true` if every logical column passes.
    pub fn all_pass(&self) -> bool {
        self.failing_count() == 0
    }
}

/// How aggressively to repair a failing tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairPolicy {
    /// Detection parameters.
    pub bist: BistConfig,
    /// Rung 1: write–verify retry attempts per failing column (0 skips
    /// the rung entirely).
    pub reprogram_attempts: usize,
    /// Verify-tolerance relaxation factor applied per retry (≥ 1).
    pub tolerance_backoff: f64,
    /// Pulse budget per cell per programming attempt.
    pub pulse_budget: usize,
    /// Rung 2: remap failing columns onto reserved spare bitlines.
    pub use_spares: bool,
    /// Rung 3: fault-aware row permutation (large-|w| rows routed away
    /// from faulty wordlines), reverted if it does not help.
    pub permute_rows: bool,
}

impl RepairPolicy {
    /// Detection only: BIST runs and tiles are flagged, but nothing is
    /// rewritten — the no-repair baseline of fault campaigns.
    pub fn detect_only() -> RepairPolicy {
        RepairPolicy {
            bist: BistConfig::default(),
            reprogram_attempts: 0,
            tolerance_backoff: 2.0,
            pulse_budget: 32,
            use_spares: false,
            permute_rows: false,
        }
    }

    /// The full ladder: reprogram with retry, spare remap, row
    /// permutation, then graceful degradation.
    pub fn full() -> RepairPolicy {
        RepairPolicy {
            bist: BistConfig::default(),
            reprogram_attempts: 2,
            tolerance_backoff: 2.0,
            pulse_budget: 32,
            use_spares: true,
            permute_rows: true,
        }
    }
}

impl Default for RepairPolicy {
    fn default() -> RepairPolicy {
        RepairPolicy::full()
    }
}

/// Final state of a tile after the ladder ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TileStatus {
    /// BIST found nothing wrong.
    Healthy,
    /// Faults were found and every failing column was recovered.
    Repaired,
    /// Failing columns remain; inference continues on the damaged tile.
    Degraded,
}

/// Per-tile health and repair accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileHealth {
    /// Layer index within the network.
    pub layer: usize,
    /// Tile index within the layer's mapped weights.
    pub tile_index: usize,
    /// Outcome after the ladder ran.
    pub status: TileStatus,
    /// Failing logical columns before repair.
    pub failing_before: usize,
    /// Failing logical columns after repair.
    pub failing_after: usize,
    /// Columns recovered by write–verify reprogramming.
    pub reprogrammed_cols: usize,
    /// Columns rerouted onto spare bitlines.
    pub remapped_cols: usize,
    /// `true` if a row permutation was kept.
    pub permuted: bool,
    /// Spare bitlines consumed (including spares burned on faulty
    /// spares).
    pub spares_used: usize,
    /// Total programming pulses spent on repair.
    pub repair_pulses: u64,
    /// Total programming energy spent on repair.
    pub repair_energy: Joules,
}

/// Health of every tile of a compiled network.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// Per-tile entries, in (layer, tile) order.
    pub tiles: Vec<TileHealth>,
}

impl HealthReport {
    /// Number of tiles left degraded.
    pub fn degraded_tiles(&self) -> usize {
        self.tiles
            .iter()
            .filter(|t| t.status == TileStatus::Degraded)
            .count()
    }

    /// Number of tiles fully repaired.
    pub fn repaired_tiles(&self) -> usize {
        self.tiles
            .iter()
            .filter(|t| t.status == TileStatus::Repaired)
            .count()
    }

    /// Total repair energy across all tiles.
    pub fn total_repair_energy(&self) -> Joules {
        Joules(self.tiles.iter().map(|t| t.repair_energy.0).sum())
    }

    /// Total programming pulses across all tiles.
    pub fn total_repair_pulses(&self) -> u64 {
        self.tiles.iter().map(|t| t.repair_pulses).sum()
    }

    /// Total spare bitlines consumed.
    pub fn total_spares_used(&self) -> usize {
        self.tiles.iter().map(|t| t.spares_used).sum()
    }

    /// `true` if no tile is degraded.
    pub fn is_healthy(&self) -> bool {
        self.degraded_tiles() == 0
    }
}

/// Runs the built-in self-test on one tile.
///
/// Each physical wordline is probed with a full-scale single spike while
/// the others stay silent; the measured column voltages (actual cells) are
/// compared against the voltages the design targets would produce, both
/// through the same spike-domain engine.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_bist(
    engine: &ResipeEngine,
    tile: &Tile,
    window: ResistanceWindow,
    config: &BistConfig,
) -> Result<BistReport, ResipeError> {
    let cfg = engine.config();
    let tau = cfg.tau_gd().0;
    let vs = cfg.vs().0;
    let t_max = cfg.t_max().0;
    let v_ref = vs * (1.0 - (-t_max / tau).exp());
    let dt_over_c = cfg.dt().0 / cfg.c_cog().0;
    let r_acc = tile.access_resistance;
    let eff = |g: f64| 1.0 / (1.0 / g + r_acc);

    let target_eff = |targets: &[f64]| -> Vec<f64> { targets.iter().map(|&g| eff(g)).collect() };
    let exp_plus = target_eff(&tile.target_plus);
    let exp_minus = target_eff(&tile.target_minus);

    // Per-physical-column normalization: the output swing of one cell
    // moving across its whole window, at the nominal decode constant.
    let cell_swing: Vec<f64> = (0..tile.phys_cols)
        .map(|c| {
            let gsum = tile.gsum_plus[c].max(tile.gsum_minus[c]).max(1e-18);
            let k = (1.0 - (-dt_over_c * gsum).exp()) / gsum;
            (v_ref * k * (eff(window.g_max().0) - eff(window.g_min().0))).max(1e-18)
        })
        .collect();

    let mut worst = vec![0.0f64; tile.phys_cols];
    let mut t_in = vec![Seconds(0.0); tile.rows];
    for p in 0..tile.rows {
        t_in[p] = Seconds(t_max);
        for (actual, expected) in [(&tile.eff_plus, &exp_plus), (&tile.eff_minus, &exp_minus)] {
            let meas = engine.mvm_matrix(actual, tile.rows, tile.phys_cols, &t_in)?;
            let exp = engine.mvm_matrix(expected, tile.rows, tile.phys_cols, &t_in)?;
            for c in 0..tile.phys_cols {
                let dev = (meas[c].v_out.0 - exp[c].v_out.0).abs() / cell_swing[c];
                if dev > worst[c] {
                    worst[c] = dev;
                }
            }
        }
        t_in[p] = Seconds(0.0);
    }

    let columns = (0..tile.cols)
        .map(|j| {
            let pc = tile.col_map[j];
            ColumnDiagnosis {
                logical_col: j,
                physical_col: pc,
                worst_deviation: worst[pc],
                failing: worst[pc] > config.cell_threshold,
            }
        })
        .collect();
    Ok(BistReport { columns })
}

/// Write–verifies one physical column of one array toward its targets.
///
/// Stuck cells cannot move: the programmer burns its full pulse budget on
/// them unless the pinned value already satisfies the verify window.
/// Returns `(pulses, energy_joules, all_converged)`.
fn program_column<R: Rng + ?Sized>(
    cells: &mut [f64],
    targets: &[f64],
    faults: &FaultMap,
    pc: usize,
    programmer: &Programmer,
    window: ResistanceWindow,
    rng: &mut R,
) -> (u64, f64, bool) {
    // The fault map shares the array's physical geometry.
    let rows = faults.rows();
    let phys_cols = faults.cols();
    let g_max = window.g_max().0;
    let tol = programmer.config().tolerance();
    let budget = programmer.config().max_pulses();
    let pulse_energy = programmer.config().pulse_energy().0;
    let mut pulses = 0u64;
    let mut energy = 0.0;
    let mut all_converged = true;
    for p in 0..rows {
        let idx = p * phys_cols + pc;
        let target = window.clamp(Siemens(targets[idx]));
        if let Some(g) = faults.fault(p, pc).stuck_conductance(window) {
            cells[idx] = g.0;
            let err = (g.0 - target.0).abs() / g_max;
            if err > tol {
                // The verify read never passes; the whole budget is burned.
                pulses += budget as u64;
                energy += budget as f64 * pulse_energy;
                all_converged = false;
            }
            continue;
        }
        let mut cell = ReramCell::new(window);
        cell.program_conductance(Siemens(cells[idx]));
        let report = programmer
            .program(&mut cell, target, rng)
            .expect("target clamped into window");
        cells[idx] = cell.conductance().0;
        pulses += report.pulses as u64;
        energy += report.energy.0;
        all_converged &= report.converged;
    }
    (pulses, energy, all_converged)
}

/// Write–verifies both arrays of one physical column. Returns
/// `(pulses, energy, converged)`.
fn program_column_pair<R: Rng + ?Sized>(
    tile: &mut Tile,
    pc: usize,
    programmer: &Programmer,
    window: ResistanceWindow,
    rng: &mut R,
) -> (u64, f64, bool) {
    let (p1, e1, c1) = program_column(
        &mut tile.cell_plus,
        &tile.target_plus,
        &tile.fault_plus,
        pc,
        programmer,
        window,
        rng,
    );
    let (p2, e2, c2) = program_column(
        &mut tile.cell_minus,
        &tile.target_minus,
        &tile.fault_minus,
        pc,
        programmer,
        window,
        rng,
    );
    (p1 + p2, e1 + e2, c1 && c2)
}

/// Builds a programmer for one repair attempt: the base config with the
/// policy's pulse budget and a verify tolerance relaxed by
/// `tolerance_backoff^attempt`.
fn attempt_programmer(policy: &RepairPolicy, attempt: usize) -> Programmer {
    let base = ProgramConfig::typical();
    let tol = base.tolerance() * policy.tolerance_backoff.max(1.0).powi(attempt as i32);
    let cfg = base
        .with_tolerance(tol)
        .and_then(|c| c.with_max_pulses(policy.pulse_budget.max(1)))
        .expect("repair programming config is valid");
    Programmer::new(cfg)
}

/// Runs the repair ladder on one tile of `mapped`, in place.
///
/// Never fails the tile: if every rung is exhausted the tile is marked
/// [`TileStatus::Degraded`] and inference proceeds on the damaged array.
///
/// # Errors
///
/// Propagates engine errors from the BIST passes.
///
/// # Panics
///
/// Panics if `tile_index` is out of range.
pub fn repair_tile<R: Rng + ?Sized>(
    engine: &ResipeEngine,
    mapped: &mut MappedWeights,
    tile_index: usize,
    layer: usize,
    policy: &RepairPolicy,
    rng: &mut R,
) -> Result<TileHealth, ResipeError> {
    let window = mapped.window();
    let tile = &mut mapped.tiles_mut()[tile_index];

    let before = run_bist(engine, tile, window, &policy.bist)?;
    let failing_before = before.failing_count();
    let mut health = TileHealth {
        layer,
        tile_index,
        status: TileStatus::Healthy,
        failing_before,
        failing_after: 0,
        reprogrammed_cols: 0,
        remapped_cols: 0,
        permuted: false,
        spares_used: tile.spares_used,
        repair_pulses: 0,
        repair_energy: Joules(0.0),
    };
    if failing_before == 0 {
        return Ok(health);
    }

    let mut failing = before.failing_cols();

    // Rung 1: reprogram with retry and tolerance backoff.
    for attempt in 0..policy.reprogram_attempts {
        if failing.is_empty() {
            break;
        }
        let programmer = attempt_programmer(policy, attempt);
        for &j in &failing {
            let pc = tile.col_map[j];
            let (pulses, energy, _) = program_column_pair(tile, pc, &programmer, window, rng);
            health.repair_pulses += pulses;
            health.repair_energy.0 += energy;
        }
        tile.pin_faults(window);
        let report = run_bist(engine, tile, window, &policy.bist)?;
        let still: Vec<usize> = report.failing_cols();
        health.reprogrammed_cols += failing.iter().filter(|j| !still.contains(j)).count();
        failing = still;
    }

    // Rung 2: remap still-failing columns onto spare bitlines. A spare is
    // consumed even when it turns out faulty itself — the next is tried.
    if policy.use_spares && !failing.is_empty() {
        let programmer = attempt_programmer(policy, 0);
        let mut remaining = Vec::new();
        for &j in &failing {
            let mut recovered = false;
            while tile.spares_used < tile.spare_cols() {
                let pc_spare = tile.cols + tile.spares_used;
                tile.spares_used += 1;
                let pc_old = tile.col_map[j];
                for p in 0..tile.rows {
                    let src = p * tile.phys_cols + pc_old;
                    let dst = p * tile.phys_cols + pc_spare;
                    tile.target_plus[dst] = tile.target_plus[src];
                    tile.target_minus[dst] = tile.target_minus[src];
                }
                let (pulses, energy, _) =
                    program_column_pair(tile, pc_spare, &programmer, window, rng);
                health.repair_pulses += pulses;
                health.repair_energy.0 += energy;
                tile.pin_faults(window);
                tile.recompute_design_gsums();
                tile.col_map[j] = pc_spare;
                let report = run_bist(engine, tile, window, &policy.bist)?;
                if !report.failing_cols().contains(&j) {
                    recovered = true;
                    health.remapped_cols += 1;
                    break;
                }
                // Faulty spare: route back and try the next one.
                tile.col_map[j] = pc_old;
            }
            if !recovered {
                remaining.push(j);
            }
        }
        failing = remaining;
    }

    // Rung 3: fault-aware row permutation — route large-magnitude logical
    // rows onto the least-faulty physical wordlines, reprogram the whole
    // tile, and keep the result only if it reduces the failing count.
    if policy.permute_rows && !failing.is_empty() && tile.rows > 1 {
        let snapshot = tile.clone();

        // Badness of each physical wordline: stuck cells across the
        // bitlines actually in use.
        let used_cols: Vec<usize> = tile.col_map.clone();
        let badness: Vec<usize> = (0..tile.rows)
            .map(|p| {
                used_cols
                    .iter()
                    .map(|&pc| {
                        tile.fault_plus.fault(p, pc).is_stuck() as usize
                            + tile.fault_minus.fault(p, pc).is_stuck() as usize
                    })
                    .sum()
            })
            .collect();

        // Recover the logical target rows from the current routing.
        let mut logical_plus = vec![0.0; tile.rows * tile.phys_cols];
        let mut logical_minus = vec![0.0; tile.rows * tile.phys_cols];
        for p in 0..tile.rows {
            let l = tile.row_source[p];
            let src = p * tile.phys_cols;
            let dst = l * tile.phys_cols;
            logical_plus[dst..dst + tile.phys_cols]
                .copy_from_slice(&tile.target_plus[src..src + tile.phys_cols]);
            logical_minus[dst..dst + tile.phys_cols]
                .copy_from_slice(&tile.target_minus[src..src + tile.phys_cols]);
        }

        // Importance of each logical row: total mapped weight magnitude.
        let importance: Vec<f64> = (0..tile.rows)
            .map(|l| {
                used_cols
                    .iter()
                    .map(|&pc| {
                        (logical_plus[l * tile.phys_cols + pc]
                            - logical_minus[l * tile.phys_cols + pc])
                            .abs()
                    })
                    .sum()
            })
            .collect();

        let mut phys_by_badness: Vec<usize> = (0..tile.rows).collect();
        phys_by_badness.sort_by_key(|&p| badness[p]);
        let mut logical_by_importance: Vec<usize> = (0..tile.rows).collect();
        logical_by_importance.sort_by(|&a, &b| {
            importance[b]
                .partial_cmp(&importance[a])
                .expect("importance is finite")
        });

        for (rank, &p) in phys_by_badness.iter().enumerate() {
            let l = logical_by_importance[rank];
            tile.row_source[p] = l;
            let src = l * tile.phys_cols;
            let dst = p * tile.phys_cols;
            let n = tile.phys_cols;
            tile.target_plus[dst..dst + n].copy_from_slice(&logical_plus[src..src + n]);
            tile.target_minus[dst..dst + n].copy_from_slice(&logical_minus[src..src + n]);
        }

        let programmer = attempt_programmer(policy, 0);
        for pc in 0..tile.phys_cols {
            let (pulses, energy, _) = program_column_pair(tile, pc, &programmer, window, rng);
            health.repair_pulses += pulses;
            health.repair_energy.0 += energy;
        }
        tile.pin_faults(window);
        tile.recompute_design_gsums();

        let report = run_bist(engine, tile, window, &policy.bist)?;
        let still = report.failing_cols();
        if still.len() < failing.len() {
            health.permuted = true;
            failing = still;
        } else {
            // The permutation didn't help; revert (the energy stays spent).
            *tile = snapshot;
        }
    }

    health.failing_after = failing.len();
    health.spares_used = tile.spares_used;
    health.status = if failing.is_empty() {
        TileStatus::Repaired
    } else {
        TileStatus::Degraded
    };
    Ok(health)
}

/// Runs the repair ladder on every tile of one mapped layer, appending a
/// [`TileHealth`] per tile.
///
/// Each tile programs with write noise drawn from its own
/// [`crate::seeds::substream`] of `base_seed`, so the repair outcome of a
/// tile is a pure function of `(base_seed, tile index)` — independent of
/// how many tiles precede it (the per-tile determinism contract).
///
/// # Errors
///
/// Propagates engine errors from the BIST passes.
pub fn repair_layer(
    engine: &ResipeEngine,
    mapped: &mut MappedWeights,
    layer: usize,
    policy: &RepairPolicy,
    base_seed: u64,
) -> Result<Vec<TileHealth>, ResipeError> {
    repair_layer_with(
        engine,
        mapped,
        layer,
        policy,
        base_seed,
        &crate::telemetry::Telemetry::disabled(),
    )
}

/// [`repair_layer`] with a telemetry recorder: each tile's ladder run is
/// timed under a `compile/layer{L}/tile{T}/repair` span, and the
/// spare-remap, escalation (any rung past re-programming) and
/// programming-pulse counters advance from the per-tile health.
/// Recording never changes a repair outcome — the seed substreams are
/// untouched.
///
/// # Errors
///
/// Propagates engine errors from the BIST passes.
pub fn repair_layer_with(
    engine: &ResipeEngine,
    mapped: &mut MappedWeights,
    layer: usize,
    policy: &RepairPolicy,
    base_seed: u64,
    telemetry: &crate::telemetry::Telemetry,
) -> Result<Vec<TileHealth>, ResipeError> {
    use crate::telemetry::Counter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = mapped.tiles().len();
    (0..n)
        .map(|i| {
            let _repair_span =
                telemetry.span_with(|| format!("compile/layer{layer}/tile{i}/repair"));
            let mut rng = StdRng::seed_from_u64(crate::seeds::substream(base_seed, i as u64));
            let health = repair_tile(engine, mapped, i, layer, policy, &mut rng)?;
            telemetry.add(Counter::SpareRemaps, health.remapped_cols as u64);
            telemetry.add(Counter::RepairPulses, health.repair_pulses);
            if health.remapped_cols > 0 || health.permuted {
                telemetry.add(Counter::RepairEscalations, 1);
            }
            Ok(health)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResipeConfig;
    use crate::mapping::TileMapper;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> ResipeEngine {
        ResipeEngine::new(ResipeConfig::paper())
    }

    fn test_weights(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn healthy_tile_passes_bist() {
        let mapped = TileMapper::paper()
            .map(&test_weights(32, 6, 1), 32, 6)
            .unwrap();
        let report = run_bist(
            &engine(),
            &mapped.tiles()[0],
            mapped.window(),
            &BistConfig::default(),
        )
        .unwrap();
        assert!(report.all_pass(), "{:?}", report.failing_cols());
        assert_eq!(report.columns.len(), 6);
    }

    #[test]
    fn moderate_pv_does_not_trip_bist() {
        let mapped = TileMapper::paper()
            .map(&test_weights(32, 6, 2), 32, 6)
            .unwrap();
        let model = resipe_reram::VariationModel::device_to_device(0.10).unwrap();
        let noisy = mapped.perturbed(&model, 2);
        let report = run_bist(
            &engine(),
            &noisy.tiles()[0],
            noisy.window(),
            &BistConfig::default(),
        )
        .unwrap();
        assert!(report.all_pass(), "PV flagged: {:?}", report.columns);
    }

    #[test]
    fn stuck_column_detected_by_bist() {
        let mapped = TileMapper::paper()
            .map(&test_weights(32, 6, 3), 32, 6)
            .unwrap()
            .with_faults(0.05, 8, 11)
            .unwrap();
        assert!(mapped.fault_rate() > 0.0);
        let report = run_bist(
            &engine(),
            &mapped.tiles()[0],
            mapped.window(),
            &BistConfig::default(),
        )
        .unwrap();
        assert!(
            report.failing_count() > 0,
            "5 % clustered faults must trip BIST"
        );
    }

    #[test]
    fn repair_on_healthy_tile_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mapped = TileMapper::paper()
            .with_spare_cols(2)
            .map(&test_weights(32, 6, 4), 32, 6)
            .unwrap();
        let before = mapped.clone();
        let health = repair_tile(
            &engine(),
            &mut mapped,
            0,
            0,
            &RepairPolicy::full(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(health.status, TileStatus::Healthy);
        assert_eq!(health.repair_pulses, 0);
        assert_eq!(health.repair_energy, Joules(0.0));
        assert_eq!(mapped, before, "healthy repair must not touch the tile");
    }

    #[test]
    fn detect_only_reports_but_does_not_repair() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mapped = TileMapper::paper()
            .map(&test_weights(32, 6, 5), 32, 6)
            .unwrap()
            .with_faults(0.08, 8, 5)
            .unwrap();
        let health = repair_tile(
            &engine(),
            &mut mapped,
            0,
            0,
            &RepairPolicy::detect_only(),
            &mut rng,
        )
        .unwrap();
        assert!(health.failing_before > 0);
        assert_eq!(health.failing_after, health.failing_before);
        assert_eq!(health.status, TileStatus::Degraded);
        assert_eq!(health.repair_pulses, 0);
    }

    #[test]
    fn full_ladder_recovers_faulty_columns_with_spares() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut mapped = TileMapper::paper()
            .with_spare_cols(6)
            .map(&test_weights(32, 6, 6), 32, 6)
            .unwrap()
            .with_faults(0.03, 6, 21)
            .unwrap();
        let health = repair_tile(
            &engine(),
            &mut mapped,
            0,
            0,
            &RepairPolicy::full(),
            &mut rng,
        )
        .unwrap();
        assert!(health.failing_before > 0, "faults must be detected first");
        assert!(
            health.failing_after < health.failing_before,
            "ladder must recover columns: {health:?}"
        );
        assert!(health.repair_pulses > 0);
        assert!(health.repair_energy.0 > 0.0);
    }

    #[test]
    fn heavy_faults_degrade_without_panicking() {
        let mut mapped = TileMapper::paper()
            .with_spare_cols(1)
            .map(&test_weights(32, 6, 7), 32, 6)
            .unwrap()
            .with_faults(0.25, 10, 7)
            .unwrap();
        let healths = repair_layer(&engine(), &mut mapped, 0, &RepairPolicy::full(), 7).unwrap();
        assert!(healths
            .iter()
            .any(|h| h.status == TileStatus::Degraded || h.status == TileStatus::Repaired));
        // Forward still runs on the (possibly degraded) tile.
        let y = mapped
            .forward(
                &engine(),
                &vec![0.5; 32],
                crate::mapping::SpikeEncoding::PassThrough,
            )
            .unwrap();
        assert_eq!(y.len(), 6);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn health_report_aggregates() {
        let report = HealthReport {
            tiles: vec![
                TileHealth {
                    layer: 0,
                    tile_index: 0,
                    status: TileStatus::Repaired,
                    failing_before: 2,
                    failing_after: 0,
                    reprogrammed_cols: 1,
                    remapped_cols: 1,
                    permuted: false,
                    spares_used: 1,
                    repair_pulses: 100,
                    repair_energy: Joules(1e-10),
                },
                TileHealth {
                    layer: 1,
                    tile_index: 0,
                    status: TileStatus::Degraded,
                    failing_before: 3,
                    failing_after: 2,
                    reprogrammed_cols: 0,
                    remapped_cols: 1,
                    permuted: true,
                    spares_used: 2,
                    repair_pulses: 50,
                    repair_energy: Joules(5e-11),
                },
            ],
        };
        assert_eq!(report.degraded_tiles(), 1);
        assert_eq!(report.repaired_tiles(), 1);
        assert_eq!(report.total_spares_used(), 3);
        assert_eq!(report.total_repair_pulses(), 150);
        assert!(!report.is_healthy());
        assert!((report.total_repair_energy().0 - 1.5e-10).abs() < 1e-20);
        assert!(HealthReport::default().is_healthy());
    }
}
