//! # resipe
//!
//! Reproduction of **ReSiPE: ReRAM-based Single-Spiking Processing-In-Memory
//! Engine** (Li, Yan, Li — DAC 2020).
//!
//! ReSiPE encodes every datum as the **arrival time of a single spike**
//! within a fixed time slice. A matrix–vector multiplication is then three
//! steps:
//!
//! 1. **S1** (one slice, 100 ns) — the [`gd::GlobalDecoder`] converts each
//!    input spike time `t_in` into a held voltage
//!    `V_in = V_s (1 − e^(−t_in/R_gd C_gd))` (paper Eq. 1);
//! 2. **computation stage** (Δt = 1 ns) — the held voltages drive the
//!    crossbar and each bitline's output capacitor charges to
//!    `V_out = V_eq (1 − e^(−Δt/R_eq C_cog))` with
//!    `V_eq = Σ V_i G_i / Σ G_i` (Eqs. 2–3), handled by the
//!    [`cog::ColumnOutputGenerator`];
//! 3. **S2** (one slice) — each COG compares the re-ramped `V(C_gd)`
//!    against `V_out` and fires a spike at the crossing time `t_out`
//!    (Eq. 4), giving `t_out ≈ (Δt / C_cog) Σ t_in,i G_i` (Eqs. 5–6).
//!
//! The [`engine::ResipeEngine`] implements the exact (exponential) physics;
//! [`circuit`] rebuilds the same datapath as an RC netlist on the
//! [`resipe_analog`] MNA simulator and is used to validate the closed-form
//! engine (and to regenerate the paper's Fig. 3 waveforms). [`mapping`]
//! and [`inference`] map trained [`resipe_nn`] networks onto differential
//! crossbar pairs and evaluate classification accuracy under the circuit
//! non-linearity and ReRAM process variation (the paper's Fig. 7);
//! [`power`] implements the energy/power breakdown behind Table II.
//!
//! # Quickstart
//!
//! ```
//! use resipe::prelude::*;
//! use resipe_analog::units::{Seconds, Siemens};
//!
//! # fn main() -> Result<(), resipe::ResipeError> {
//! let engine = ResipeEngine::new(ResipeConfig::paper());
//! // Two early spikes through small conductances — the doubly-linear
//! // regime where Eq. 5's `t_out = (Δt/C_cog) Σ t_in G` holds.
//! let t_in = [Seconds::from_nanos(1.0), Seconds::from_nanos(2.0)];
//! let g = [Siemens(4e-6), Siemens(6e-6)];
//! let mac = engine.mac(&t_in, &g)?;
//! let ideal = engine.mac_linear(&t_in, &g)?;
//! let rel_err = (mac.t_out.0 - ideal.0).abs() / ideal.0;
//! assert!(rel_err < 0.2, "relative error {rel_err}");
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)` deliberately rejects NaN alongside non-positive values
// when validating physical parameters; the clippy lint would obscure that.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod arch;
pub mod batch;
pub mod cache;
pub mod circuit;
pub mod cog;
pub mod config;
pub mod engine;
pub mod error;
pub mod gd;
pub mod inference;
pub mod kernel;
pub mod mapping;
pub mod parasitics;
pub mod pipeline;
pub mod power;
pub mod prelude;
pub mod repair;
pub mod scrub;
pub mod seeds;
pub mod spike;
pub mod telemetry;

pub use config::ResipeConfig;
pub use engine::{MacResult, ResipeEngine};
pub use error::ResipeError;
pub use spike::SpikeTime;
