//! Multi-layer pipelining and latency accounting.
//!
//! The single-spiking data format makes S2 of layer *n* double as S1 of
//! layer *n + 1* (paper Fig. 1): "the operation across different layers can
//! be realized in the pipeline form". This module quantifies that:
//!
//! * sequentially, an L-layer network needs `L · (2·slice + Δt)`;
//! * pipelined, each additional layer adds only one slice, so the first
//!   result arrives after `(L + 1) · slice + L · Δt` and — in steady
//!   state — a new inference completes every two slices.

use serde::{Deserialize, Serialize};

use resipe_analog::units::Seconds;

use crate::config::ResipeConfig;
use crate::error::ResipeError;

/// Latency summary of an L-layer single-spiking pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineLatency {
    /// Number of layers.
    pub layers: usize,
    /// End-to-end latency of one inference without pipelining.
    pub sequential: Seconds,
    /// End-to-end latency of the first inference with layer pipelining.
    pub pipelined: Seconds,
    /// Steady-state initiation interval (one result per this period).
    pub initiation_interval: Seconds,
}

impl PipelineLatency {
    /// Computes the latency summary for an `layers`-deep network.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] for an invalid configuration
    /// or zero layers.
    pub fn for_network(
        config: &ResipeConfig,
        layers: usize,
    ) -> Result<PipelineLatency, ResipeError> {
        config.validate()?;
        if layers == 0 {
            return Err(ResipeError::InvalidConfig {
                reason: "pipeline needs at least one layer".into(),
            });
        }
        let slice = config.slice().0;
        let dt = config.dt().0;
        let sequential = Seconds(layers as f64 * (2.0 * slice + dt));
        // S2 of layer n is S1 of layer n+1: L+1 slices total plus the L
        // computation stages.
        let pipelined = Seconds((layers as f64 + 1.0) * slice + layers as f64 * dt);
        // In steady state each engine alternates S1/S2: one new inference
        // every two slices.
        let initiation_interval = Seconds(2.0 * slice + dt);
        Ok(PipelineLatency {
            layers,
            sequential,
            pipelined,
            initiation_interval,
        })
    }

    /// Latency speedup of pipelining over sequential execution.
    pub fn speedup(&self) -> f64 {
        self.sequential.0 / self.pipelined.0
    }

    /// Steady-state inference throughput (inferences per second).
    pub fn steady_state_rate(&self) -> f64 {
        1.0 / self.initiation_interval.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_matches_mvm_latency() {
        let cfg = ResipeConfig::paper();
        let lat = PipelineLatency::for_network(&cfg, 1).unwrap();
        assert!((lat.sequential.as_nanos() - 201.0).abs() < 1e-9);
        assert!((lat.pipelined.as_nanos() - 201.0).abs() < 1e-9);
        assert!((lat.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deep_network_pipelining_approaches_2x() {
        let cfg = ResipeConfig::paper();
        let lat = PipelineLatency::for_network(&cfg, 16).unwrap();
        // Sequential: 16 · 201 ns = 3216 ns; pipelined: 17·100 + 16·1 =
        // 1716 ns.
        assert!((lat.sequential.as_nanos() - 3216.0).abs() < 1e-6);
        assert!((lat.pipelined.as_nanos() - 1716.0).abs() < 1e-6);
        assert!(lat.speedup() > 1.8 && lat.speedup() < 2.0);
    }

    #[test]
    fn speedup_monotonic_in_depth() {
        let cfg = ResipeConfig::paper();
        let mut prev = 0.0;
        for layers in [1, 2, 4, 8, 32] {
            let s = PipelineLatency::for_network(&cfg, layers)
                .unwrap()
                .speedup();
            assert!(s >= prev, "speedup at {layers} layers");
            prev = s;
        }
    }

    #[test]
    fn steady_state_rate() {
        let cfg = ResipeConfig::paper();
        let lat = PipelineLatency::for_network(&cfg, 4).unwrap();
        // One inference per 201 ns ≈ 4.975 M inferences/s.
        let rate = lat.steady_state_rate() / 1e6;
        assert!((rate - 4.975).abs() < 0.01, "{rate} M/s");
    }

    #[test]
    fn zero_layers_rejected() {
        assert!(PipelineLatency::for_network(&ResipeConfig::paper(), 0).is_err());
    }
}
