//! Engine configuration.
//!
//! All circuit parameters of Sec. III-D / IV-A of the paper, with the
//! published values as defaults:
//!
//! | Parameter | Paper value | Field |
//! |---|---|---|
//! | Supply `V_s` | 1 V | `vs` |
//! | Ramp resistor `R_gd` | 100 kΩ | `r_gd` |
//! | Ramp capacitor `C_gd` | 100 fF | `c_gd` |
//! | Output capacitor `C_cog` | 100 fF | `c_cog` |
//! | Slice length | 100 ns | `slice` |
//! | Computation stage Δt | 1 ns | `dt` |
//! | Spike pulse width | 1 ns | `pulse_width` |
//! | Encode range | 10–80 ns (Fig. 5) | `t_max` |

use serde::{Deserialize, Serialize};

use resipe_analog::units::{Farads, Ohms, Seconds, Volts};

use crate::error::ResipeError;

/// The full parameter set of a ReSiPE engine.
///
/// Construct via [`ResipeConfig::paper`] and customize with the `with_*`
/// builder methods:
///
/// ```
/// use resipe::config::ResipeConfig;
/// use resipe_analog::units::Seconds;
///
/// # fn main() -> Result<(), resipe::ResipeError> {
/// let cfg = ResipeConfig::paper()
///     .with_slice(Seconds::from_nanos(50.0))
///     .with_t_max(Seconds::from_nanos(40.0));
/// cfg.validate()?;
/// assert_eq!(cfg.slice(), Seconds::from_nanos(50.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResipeConfig {
    vs: Volts,
    r_gd: Ohms,
    c_gd: Farads,
    c_cog: Farads,
    slice: Seconds,
    dt: Seconds,
    pulse_width: Seconds,
    t_max: Seconds,
}

impl ResipeConfig {
    /// The paper's published parameter set (Sec. III-D / IV-A).
    pub fn paper() -> ResipeConfig {
        ResipeConfig {
            vs: Volts(1.0),
            r_gd: Ohms(100e3),
            c_gd: Farads(100e-15),
            c_cog: Farads(100e-15),
            slice: Seconds(100e-9),
            dt: Seconds(1e-9),
            pulse_width: Seconds(1e-9),
            t_max: Seconds(80e-9),
        }
    }

    /// Sets the supply voltage.
    pub fn with_vs(mut self, vs: Volts) -> ResipeConfig {
        self.vs = vs;
        self
    }

    /// Sets the ramp resistor `R_gd`.
    pub fn with_r_gd(mut self, r: Ohms) -> ResipeConfig {
        self.r_gd = r;
        self
    }

    /// Sets the ramp capacitor `C_gd`.
    pub fn with_c_gd(mut self, c: Farads) -> ResipeConfig {
        self.c_gd = c;
        self
    }

    /// Sets the column output capacitor `C_cog`.
    pub fn with_c_cog(mut self, c: Farads) -> ResipeConfig {
        self.c_cog = c;
        self
    }

    /// Sets the slice length.
    pub fn with_slice(mut self, slice: Seconds) -> ResipeConfig {
        self.slice = slice;
        self
    }

    /// Sets the computation-stage duration Δt.
    pub fn with_dt(mut self, dt: Seconds) -> ResipeConfig {
        self.dt = dt;
        self
    }

    /// Sets the spike pulse width.
    pub fn with_pulse_width(mut self, w: Seconds) -> ResipeConfig {
        self.pulse_width = w;
        self
    }

    /// Sets the largest spike time used to encode the value 1.0.
    pub fn with_t_max(mut self, t: Seconds) -> ResipeConfig {
        self.t_max = t;
        self
    }

    /// Supply voltage `V_s`.
    pub fn vs(&self) -> Volts {
        self.vs
    }

    /// Ramp resistor `R_gd`.
    pub fn r_gd(&self) -> Ohms {
        self.r_gd
    }

    /// Ramp capacitor `C_gd`.
    pub fn c_gd(&self) -> Farads {
        self.c_gd
    }

    /// Column output capacitor `C_cog`.
    pub fn c_cog(&self) -> Farads {
        self.c_cog
    }

    /// Slice length.
    pub fn slice(&self) -> Seconds {
        self.slice
    }

    /// Computation-stage duration Δt.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Spike pulse width.
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// Largest encode time (value 1.0 maps to this spike time).
    pub fn t_max(&self) -> Seconds {
        self.t_max
    }

    /// The ramp time constant `τ_gd = R_gd · C_gd` (10 ns for the paper's
    /// values).
    pub fn tau_gd(&self) -> Seconds {
        self.r_gd * self.c_gd
    }

    /// The linear MAC gain `Δt / C_cog` of Eq. 5 (units of ohms; 10 kΩ for
    /// the paper's values).
    pub fn gain(&self) -> Ohms {
        self.dt / self.c_cog
    }

    /// Latency of one complete MVM: two slices plus the computation stage.
    pub fn mvm_latency(&self) -> Seconds {
        Seconds(2.0 * self.slice.0 + self.dt.0)
    }

    /// Checks every field for physical validity.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] describing the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), ResipeError> {
        let positive = [
            (self.vs.0, "vs"),
            (self.r_gd.0, "r_gd"),
            (self.c_gd.0, "c_gd"),
            (self.c_cog.0, "c_cog"),
            (self.slice.0, "slice"),
            (self.dt.0, "dt"),
            (self.pulse_width.0, "pulse_width"),
            (self.t_max.0, "t_max"),
        ];
        for (v, name) in positive {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ResipeError::InvalidConfig {
                    reason: format!("{name} must be positive and finite, got {v}"),
                });
            }
        }
        if self.dt.0 >= self.slice.0 {
            return Err(ResipeError::InvalidConfig {
                reason: format!(
                    "computation stage ({}) must be shorter than the slice ({})",
                    self.dt, self.slice
                ),
            });
        }
        if self.t_max.0 > self.slice.0 {
            return Err(ResipeError::InvalidConfig {
                reason: format!(
                    "encode range t_max ({}) exceeds the slice ({})",
                    self.t_max, self.slice
                ),
            });
        }
        Ok(())
    }
}

impl Default for ResipeConfig {
    /// The paper's parameter set.
    fn default() -> ResipeConfig {
        ResipeConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let cfg = ResipeConfig::paper();
        assert_eq!(cfg.vs(), Volts(1.0));
        assert_eq!(cfg.r_gd(), Ohms(100e3));
        assert_eq!(cfg.c_gd(), Farads(100e-15));
        assert_eq!(cfg.c_cog(), Farads(100e-15));
        assert_eq!(cfg.slice(), Seconds(100e-9));
        assert_eq!(cfg.dt(), Seconds(1e-9));
        assert!(cfg.validate().is_ok());
        assert_eq!(ResipeConfig::default(), cfg);
    }

    #[test]
    fn derived_quantities() {
        let cfg = ResipeConfig::paper();
        assert!((cfg.tau_gd().as_nanos() - 10.0).abs() < 1e-9);
        assert!((cfg.gain().0 - 10e3).abs() < 1e-6);
        assert!((cfg.mvm_latency().as_nanos() - 201.0).abs() < 1e-9);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = ResipeConfig::paper()
            .with_vs(Volts(0.8))
            .with_r_gd(Ohms(50e3))
            .with_c_gd(Farads(200e-15))
            .with_c_cog(Farads(50e-15))
            .with_dt(Seconds(2e-9))
            .with_pulse_width(Seconds(0.5e-9))
            .with_t_max(Seconds(60e-9));
        assert_eq!(cfg.vs(), Volts(0.8));
        assert_eq!(cfg.r_gd(), Ohms(50e3));
        assert_eq!(cfg.c_gd(), Farads(200e-15));
        assert_eq!(cfg.c_cog(), Farads(50e-15));
        assert_eq!(cfg.dt(), Seconds(2e-9));
        assert_eq!(cfg.pulse_width(), Seconds(0.5e-9));
        assert_eq!(cfg.t_max(), Seconds(60e-9));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ResipeConfig::paper()
            .with_vs(Volts(0.0))
            .validate()
            .is_err());
        assert!(ResipeConfig::paper()
            .with_dt(Seconds(200e-9))
            .validate()
            .is_err());
        assert!(ResipeConfig::paper()
            .with_t_max(Seconds(150e-9))
            .validate()
            .is_err());
        assert!(ResipeConfig::paper()
            .with_r_gd(Ohms(f64::NAN))
            .validate()
            .is_err());
    }
}
