//! Amortized batched execution of mapped layers.
//!
//! [`BatchPlan`] precomputes everything in a [`MappedWeights`] forward
//! pass that does not depend on the input sample — per-column crossbar
//! conductance sums, capacitor charge factors, the nominal decode
//! constants, and a column-major copy of the effective conductances —
//! and then replays the *exact* per-sample floating-point operation
//! sequence of [`MappedWeights::forward`] against those hoisted values.
//!
//! Because every hoisted quantity is computed by the same expression on
//! the same inputs (in the same order) as the per-sample path, and a
//! value computed once is bit-equal to the same value recomputed, the
//! plan's outputs are **bit-identical** to the sequential path. What the
//! plan removes is pure redundancy:
//!
//! * column sums and charge factors, recomputed per sample by
//!   [`crate::engine::ResipeEngine::mvm_matrix`], are computed once per
//!   batch;
//! * the output spike time `t_out` that `mvm_matrix` derives for every
//!   physical bitline is skipped — the decode reconstructs its own
//!   observed time from `V_out` and never reads it;
//! * spare (unrouted) bitlines are not evaluated;
//! * the S1 ramp samples are shared between the positive and negative
//!   arrays of the differential pair instead of being recomputed per
//!   array;
//! * a **zero activation encodes to exactly `+0.0`** in both encodings
//!   (`exp(±0.0) == 1.0` and `ln(1.0) == +0.0` are exact in IEEE 754,
//!   so the whole `encode → ramp-sample` chain collapses to `+0.0`),
//!   so its `ln`/`exp` pair is skipped outright;
//! * wordlines held at `V = 0` are skipped inside the weighted
//!   accumulation (their products are exactly `+0.0`, so skipping them
//!   cannot change the sum's bits);
//! * the decode of a column observing `V_out = +0.0` is a pure function
//!   of that column's hoisted `(offset, k)` constants, so its value is
//!   computed once at plan-build time and reused whenever the sampled
//!   voltage is exactly zero.
//!
//! This is what makes the batched inference path faster even on a single
//! core; on multicore hosts [`crate::inference::HardwareNetwork::forward_batch`]
//! additionally fans samples out across the rayon pool.

use std::sync::OnceLock;
use std::time::Instant;

use resipe_analog::units::Seconds;

use crate::engine::ResipeEngine;
use crate::error::ResipeError;
use crate::kernel::{Backend, FIXED_LEVELS, VECTOR_LANES};
use crate::mapping::{MappedWeights, SpikeEncoding, Tile};
use crate::telemetry::{LayerProbe, SampleStats};

/// Sample-independent constants of one crossbar tile pair.
#[derive(Debug, Clone)]
struct TilePlan {
    /// First logical input row of this tile.
    row_start: usize,
    /// Wordlines in this tile.
    rows: usize,
    /// Logical columns decoded from this tile.
    cols: usize,
    /// Physical wordline → logical tile row driving it.
    row_source: Vec<usize>,
    /// Effective conductances, column-major `[cols × rows]`, routed
    /// through the logical→physical column map (spares dropped).
    g_plus: Vec<f64>,
    g_minus: Vec<f64>,
    /// Actual per-logical-column conductance sums (row-order partial
    /// sums, exactly as `mvm_matrix` accumulates them).
    g_total_plus: Vec<f64>,
    g_total_minus: Vec<f64>,
    /// Hoisted charge factors `1 − e^(−Δt/C · ΣG)` per logical column.
    charge_plus: Vec<f64>,
    charge_minus: Vec<f64>,
    /// Hoisted nominal decode constants `k_j` per logical column.
    k_plus: Vec<f64>,
    k_minus: Vec<f64>,
    /// Static comparator offsets per logical column.
    offset_plus: Vec<f64>,
    offset_minus: Vec<f64>,
    /// Hoisted decode of `V_out = +0.0` per logical column.
    d0_plus: Vec<f64>,
    d0_minus: Vec<f64>,
}

/// Pre-quantized integer mirror of one [`TilePlan`] for the
/// [`Backend::FixedI32`] kernel: conductances rounded to `i32` codes of
/// `g_lsb` siemens each, built lazily once per plan and shared by every
/// fixed-point block afterwards.
#[derive(Debug, Clone)]
struct FixedTile {
    /// Column-major conductance codes `round(g / g_lsb)`.
    q_plus: Vec<i32>,
    q_minus: Vec<i32>,
    /// Conductance quantization step: `max(g) / 2^FIXED_QBITS` over both
    /// arrays of this tile (floored at `f64::MIN_POSITIVE` so an
    /// all-zero tile stays well-defined).
    g_lsb: f64,
    /// Dequantization factor `v_lsb * g_lsb` applied to the integer dot
    /// product.
    w_scale: f64,
}

impl TilePlan {
    fn new(tile: &Tile, row_start: usize, dt_over_c: f64) -> TilePlan {
        let rows = tile.rows();
        let cols = tile.cols();
        let phys_cols = tile.physical_cols();
        let mut plan = TilePlan {
            row_start,
            rows,
            cols,
            row_source: tile.row_source.clone(),
            g_plus: Vec::with_capacity(cols * rows),
            g_minus: Vec::with_capacity(cols * rows),
            g_total_plus: Vec::with_capacity(cols),
            g_total_minus: Vec::with_capacity(cols),
            charge_plus: Vec::with_capacity(cols),
            charge_minus: Vec::with_capacity(cols),
            k_plus: Vec::with_capacity(cols),
            k_minus: Vec::with_capacity(cols),
            offset_plus: Vec::with_capacity(cols),
            offset_minus: Vec::with_capacity(cols),
            d0_plus: Vec::new(),
            d0_minus: Vec::new(),
        };
        let _ = phys_cols;
        for j in 0..cols {
            let pc = tile.col_map()[j];
            for (eff_cm, g_col, g_total, charge, k, offs, gsum, offsets) in [
                (
                    tile.eff_plus_cm(),
                    &mut plan.g_plus,
                    &mut plan.g_total_plus,
                    &mut plan.charge_plus,
                    &mut plan.k_plus,
                    &mut plan.offset_plus,
                    &tile.gsum_plus,
                    &tile.offset_plus,
                ),
                (
                    tile.eff_minus_cm(),
                    &mut plan.g_minus,
                    &mut plan.g_total_minus,
                    &mut plan.charge_minus,
                    &mut plan.k_minus,
                    &mut plan.offset_minus,
                    &tile.gsum_minus,
                    &tile.offset_minus,
                ),
            ] {
                // Column sum in row order — the exact accumulation order
                // of `mvm_matrix`, so the hoisted sum is bit-equal to the
                // per-sample recomputation it replaces. The tile's SoA
                // mirror already holds the column contiguously.
                let col = &eff_cm[pc * rows..(pc + 1) * rows];
                let mut total = 0.0f64;
                for &g in col {
                    total += g;
                }
                g_col.extend_from_slice(col);
                g_total.push(total);
                charge.push(1.0 - (-dt_over_c * total).exp());
                let gsum_nom = gsum[pc];
                k.push((1.0 - (-dt_over_c * gsum_nom).exp()) / gsum_nom);
                offs.push(offsets[pc]);
            }
        }
        plan
    }
}

/// Reusable per-worker buffers for [`BatchPlan::forward_one`].
///
/// Create one per thread with [`BatchPlan::scratch`] and reuse it across
/// samples to keep the hot loop allocation-free.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// Held S1 wordline voltages of the current tile.
    v_in: Vec<f64>,
    /// Indices of wordlines with a non-zero held voltage.
    nonzero: Vec<u32>,
    /// Sampled `(V_out⁺, V_out⁻)` per column of the current tile —
    /// used only by the probed path, which splits the column loop into
    /// a crossbar pass and a decode pass to time them separately.
    v_cols: Vec<(f64, f64)>,
    /// Held wordline voltages of every sample in the current block,
    /// stride `tile.rows` per sample ([`BatchPlan::forward_block`]).
    v_in_block: Vec<f64>,
    /// Concatenated non-zero wordline indices of the block's samples.
    nz_idx: Vec<u32>,
    /// Prefix bounds into `nz_idx`: sample `b` of the block owns
    /// `nz_idx[nz_bounds[b]..nz_bounds[b + 1]]`.
    nz_bounds: Vec<usize>,
    /// Staged `(V_out⁺, V_out⁻)` per (column, sample) of the probed
    /// block path and of the non-scalar kernel backends, indexed
    /// `j * samples + b`.
    v_cols_block: Vec<(f64, f64)>,
    /// Quantized held-voltage codes of the current tile block (stride
    /// `tile.rows` per sample), filled by the [`Backend::FixedI32`]
    /// prepare stage.
    q_in_block: Vec<i32>,
    /// Normalized-activation staging for a block of samples — borrowed
    /// by `HardwareNetwork` between kernel invocations so the per-block
    /// input copy reuses one allocation.
    pub(crate) a_block: Vec<f64>,
}

/// A sample-independent execution plan for one mapped weight layer.
///
/// See the [module docs](crate::batch) for the amortization/determinism
/// contract. Build once per layer per batch with [`BatchPlan::new`], then
/// call [`BatchPlan::forward_one`] per sample (from any number of
/// threads, each with its own [`BatchScratch`]).
#[derive(Debug, Clone)]
pub struct BatchPlan {
    rows: usize,
    cols: usize,
    encoding: SpikeEncoding,
    tau: f64,
    vs: f64,
    t_max: f64,
    v_ref: f64,
    slice: f64,
    /// Upper comparator clamp `V_s (1 − 1e−12)` of the decode.
    v_clamp: f64,
    time_quantum: Option<f64>,
    /// Final digital rescale `w_scale / (V_ref Δg_eff)`.
    scale: f64,
    tiles: Vec<TilePlan>,
    max_tile_rows: usize,
    /// Conductance bytes read from the tile plans by one pass over all
    /// tiles (both differential arrays) — the traffic one block of the
    /// blocked kernel streams, versus once per *sample* unblocked.
    tile_stream_bytes: u64,
    /// Held-voltage quantization step `V_s / 2^FIXED_QBITS` of the
    /// fixed-point backend.
    v_lsb: f64,
    /// Lazily built integer tile mirrors for [`Backend::FixedI32`] —
    /// a pure function of the plan, so sharing the cache across threads
    /// and backends is race-free.
    fixed: OnceLock<Vec<FixedTile>>,
}

impl BatchPlan {
    /// Builds the plan for one mapped layer on one engine.
    pub fn new(
        engine: &ResipeEngine,
        mapped: &MappedWeights,
        encoding: SpikeEncoding,
    ) -> BatchPlan {
        let cfg = engine.config();
        let tau = cfg.tau_gd().0;
        let vs = cfg.vs().0;
        let t_max = cfg.t_max().0;
        let v_ref = vs * (1.0 - (-t_max / tau).exp());
        let dt_over_c = cfg.dt().0 / cfg.c_cog().0;
        let mut tiles = Vec::with_capacity(mapped.tiles().len());
        let mut row_start = 0usize;
        for tile in mapped.tiles() {
            tiles.push(TilePlan::new(tile, row_start, dt_over_c));
            row_start += tile.rows();
        }
        let mut plan = BatchPlan {
            rows: mapped.rows(),
            cols: mapped.cols(),
            encoding,
            tau,
            vs,
            t_max,
            v_ref,
            slice: cfg.slice().0,
            v_clamp: vs * (1.0 - 1e-12),
            time_quantum: mapped.time_quantum(),
            scale: mapped.weight_scale() / (v_ref * mapped.delta_g_eff().0),
            max_tile_rows: mapped.tiles().iter().map(Tile::rows).max().unwrap_or(0),
            tile_stream_bytes: 0,
            v_lsb: vs / FIXED_LEVELS,
            fixed: OnceLock::new(),
            tiles,
        };
        plan.tile_stream_bytes = plan
            .tiles
            .iter()
            .map(|t| ((t.g_plus.len() + t.g_minus.len()) * std::mem::size_of::<f64>()) as u64)
            .sum();
        for ti in 0..plan.tiles.len() {
            let d0_plus: Vec<f64> = (0..plan.tiles[ti].cols)
                .map(|j| {
                    plan.decode_column(0.0, plan.tiles[ti].offset_plus[j], plan.tiles[ti].k_plus[j])
                })
                .collect();
            let d0_minus: Vec<f64> = (0..plan.tiles[ti].cols)
                .map(|j| {
                    plan.decode_column(
                        0.0,
                        plan.tiles[ti].offset_minus[j],
                        plan.tiles[ti].k_minus[j],
                    )
                })
                .collect();
            plan.tiles[ti].d0_plus = d0_plus;
            plan.tiles[ti].d0_minus = d0_minus;
        }
        plan
    }

    /// Allocates a scratch buffer sized for this plan.
    pub fn scratch(&self) -> BatchScratch {
        BatchScratch {
            v_in: Vec::with_capacity(self.max_tile_rows),
            nonzero: Vec::with_capacity(self.max_tile_rows),
            v_cols: Vec::with_capacity(self.cols),
            ..BatchScratch::default()
        }
    }

    /// Logical input dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical output dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conductance bytes streamed from the tile plans by one pass over
    /// all tiles (both differential arrays). The blocked kernel pays
    /// this once per *block*; the unblocked path pays it once per
    /// *sample*.
    pub fn tile_stream_bytes(&self) -> u64 {
        self.tile_stream_bytes
    }

    /// Deterministic sample-block size for [`BatchPlan::forward_block`]:
    /// as many samples as keep one block's per-sample working set
    /// (held wordline voltages, non-zero index list, output row) inside
    /// a 32 KiB L1 budget, clamped to `[1, 64]`. A pure function of the
    /// layer shape — never of the host — so blocked execution partitions
    /// work identically on every machine.
    pub fn preferred_block(&self) -> usize {
        let per_sample = 12 * self.max_tile_rows + 8 * self.cols;
        (32 * 1024 / per_sample.max(1)).clamp(1, 64)
    }

    /// Executes one logical MVM — bit-identical to
    /// [`MappedWeights::forward`] on the same activations and encoding.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == rows`.
    pub fn forward_one(
        &self,
        activations: &[f64],
        scratch: &mut BatchScratch,
    ) -> Result<Vec<f64>, ResipeError> {
        if activations.len() != self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: self.rows,
                got: activations.len(),
            });
        }
        let mut acc = vec![0.0f64; self.cols];
        for tile in &self.tiles {
            scratch.v_in.clear();
            scratch.nonzero.clear();
            // S1: encode each driven wordline's activation into a spike
            // time and sample the shared GD ramp — once per tile, shared
            // by both arrays of the differential pair.
            for (p, &l) in tile.row_source.iter().enumerate() {
                let a = activations[tile.row_start + l].clamp(0.0, 1.0);
                if a == 0.0 {
                    // encode(±0.0) is exactly +0.0 in both encodings:
                    // `0.0 * x == ±0.0`, `ln(1.0) == +0.0`, `exp(±0.0)
                    // == 1.0` and `1.0 - 1.0 == +0.0` are all IEEE-exact,
                    // so the ln/exp pair can be skipped without changing
                    // a bit.
                    scratch.v_in.push(0.0);
                    continue;
                }
                let t = match self.encoding {
                    SpikeEncoding::LinearTime => a * self.t_max,
                    SpikeEncoding::PassThrough => {
                        Seconds(-self.tau * (1.0 - a * self.v_ref / self.vs).ln()).0
                    }
                };
                let v = self.vs * (1.0 - (-t / self.tau).exp());
                scratch.v_in.push(v);
                if v != 0.0 {
                    scratch.nonzero.push(p as u32);
                }
            }
            for (j, slot) in acc.iter_mut().enumerate().take(tile.cols) {
                let col = j * tile.rows..(j + 1) * tile.rows;
                // One pass over the held wordlines accumulates both
                // arrays' weighted sums; each accumulator still adds its
                // products in row order, so the bits are unchanged.
                let gp = &tile.g_plus[col.clone()];
                let gm = &tile.g_minus[col];
                let mut wp = 0.0f64;
                let mut wm = 0.0f64;
                for &p in &scratch.nonzero {
                    let v = scratch.v_in[p as usize];
                    wp += v * gp[p as usize];
                    wm += v * gm[p as usize];
                }
                let vp = Self::v_out(wp, tile.g_total_plus[j], tile.charge_plus[j]);
                let vm = Self::v_out(wm, tile.g_total_minus[j], tile.charge_minus[j]);
                // A column observing exactly V_out = 0.0 decodes to a
                // sample-independent value hoisted at plan-build time
                // (decode is a pure function of (v_out, offset, k)).
                let d_plus = if vp == 0.0 {
                    tile.d0_plus[j]
                } else {
                    self.decode_column(vp, tile.offset_plus[j], tile.k_plus[j])
                };
                let d_minus = if vm == 0.0 {
                    tile.d0_minus[j]
                } else {
                    self.decode_column(vm, tile.offset_minus[j], tile.k_minus[j])
                };
                *slot += d_plus - d_minus;
            }
        }
        for y in &mut acc {
            *y *= self.scale;
        }
        Ok(acc)
    }

    /// The sampled bitline voltage of one column from its accumulated
    /// weighted sum: `V_eq` times the hoisted charge factor. Zero-voltage
    /// wordlines contribute exactly `+0.0` to the weighted sum, so the
    /// caller skips them without changing a single bit of the
    /// accumulation.
    fn v_out(weighted: f64, g_total: f64, charge: f64) -> f64 {
        if g_total == 0.0 {
            0.0
        } else {
            (weighted / g_total) * charge
        }
    }

    /// The digital decode of one observed bitline voltage — the same
    /// operation sequence as the sequential path, with the nominal
    /// column constant `k_j` hoisted.
    fn decode_column(&self, v_out: f64, offset: f64, k: f64) -> f64 {
        self.decode_column_traced(v_out, offset, k).0
    }

    /// [`BatchPlan::decode_column`] plus the observation telemetry needs:
    /// the effective comparator voltage, the observed spike time, and
    /// whether the range clamp or the slice-end saturation engaged.
    /// Identical floating-point sequence — the trace only reads values
    /// the decode computes anyway.
    fn decode_column_traced(&self, v_out: f64, offset: f64, k: f64) -> (f64, DecodeTrace) {
        let raw = v_out + offset;
        let v_eff = raw.clamp(0.0, self.v_clamp);
        let mut t_obs = -self.tau * (1.0 - v_eff / self.vs).ln();
        if let Some(q) = self.time_quantum {
            t_obs = (t_obs / q).round() * q;
        }
        let saturated = t_obs > self.slice;
        let t_obs = t_obs.min(self.slice);
        let v_hat = self.vs * (1.0 - (-t_obs / self.tau).exp());
        (
            v_hat / k,
            DecodeTrace {
                v_eff,
                t_obs,
                offset_clamped: raw != v_eff,
                saturated,
            },
        )
    }

    /// [`BatchPlan::forward_one`] with an optional telemetry probe.
    ///
    /// With `None` this *is* `forward_one`. With a probe, the per-tile
    /// column loop is split into a crossbar pass (weighted sums and
    /// sampled `V_out`, staged in the scratch buffer) and a decode pass,
    /// so S1 encode, the computation stage and S2 decode can be timed
    /// separately — and the decode records the `t_out`/`V_out`
    /// histograms, zero-activation skips, comparator-offset rejects and
    /// slice-end saturations. Every column still sees the exact
    /// floating-point operation sequence of the unprobed path on the
    /// same inputs (columns are independent; staging an intermediate in
    /// memory does not change its bits), so probed outputs remain
    /// **bit-identical**.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == rows`.
    pub fn forward_one_probed(
        &self,
        activations: &[f64],
        scratch: &mut BatchScratch,
        probe: Option<&LayerProbe>,
    ) -> Result<Vec<f64>, ResipeError> {
        let Some(probe) = probe else {
            return self.forward_one(activations, scratch);
        };
        if activations.len() != self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: self.rows,
                got: activations.len(),
            });
        }
        let mut stats = SampleStats {
            mvms: 2 * self.tiles.len() as u64,
            ..SampleStats::default()
        };
        let mut acc = vec![0.0f64; self.cols];
        for tile in &self.tiles {
            let t0 = Instant::now();
            scratch.v_in.clear();
            scratch.nonzero.clear();
            for (p, &l) in tile.row_source.iter().enumerate() {
                let a = activations[tile.row_start + l].clamp(0.0, 1.0);
                if a == 0.0 {
                    scratch.v_in.push(0.0);
                    stats.zero_activation_skips += 1;
                    continue;
                }
                let t = match self.encoding {
                    SpikeEncoding::LinearTime => a * self.t_max,
                    SpikeEncoding::PassThrough => {
                        Seconds(-self.tau * (1.0 - a * self.v_ref / self.vs).ln()).0
                    }
                };
                let v = self.vs * (1.0 - (-t / self.tau).exp());
                scratch.v_in.push(v);
                if v != 0.0 {
                    scratch.nonzero.push(p as u32);
                }
            }
            let t1 = Instant::now();
            scratch.v_cols.clear();
            for j in 0..tile.cols {
                let col = j * tile.rows..(j + 1) * tile.rows;
                let gp = &tile.g_plus[col.clone()];
                let gm = &tile.g_minus[col];
                let mut wp = 0.0f64;
                let mut wm = 0.0f64;
                for &p in &scratch.nonzero {
                    let v = scratch.v_in[p as usize];
                    wp += v * gp[p as usize];
                    wm += v * gm[p as usize];
                }
                scratch.v_cols.push((
                    Self::v_out(wp, tile.g_total_plus[j], tile.charge_plus[j]),
                    Self::v_out(wm, tile.g_total_minus[j], tile.charge_minus[j]),
                ));
            }
            let t2 = Instant::now();
            for (j, slot) in acc.iter_mut().enumerate().take(tile.cols) {
                let (vp, vm) = scratch.v_cols[j];
                // The zero-voltage fast path of `forward_one` reuses a
                // value hoisted from this same pure function, so always
                // decoding here returns the same bits — and lets the
                // probe observe every column.
                let (d_plus, tr_p) =
                    self.decode_column_traced(vp, tile.offset_plus[j], tile.k_plus[j]);
                let (d_minus, tr_m) =
                    self.decode_column_traced(vm, tile.offset_minus[j], tile.k_minus[j]);
                for tr in [&tr_p, &tr_m] {
                    probe.record_decode(tr.v_eff, tr.t_obs);
                    stats.comparator_offset_rejects += u64::from(tr.offset_clamped);
                    stats.saturated_decodes += u64::from(tr.saturated);
                }
                *slot += d_plus - d_minus;
            }
            let t3 = Instant::now();
            stats.s1_encode_nanos += (t1 - t0).as_nanos() as u64;
            stats.crossbar_nanos += (t2 - t1).as_nanos() as u64;
            stats.s2_decode_nanos += (t3 - t2).as_nanos() as u64;
        }
        let t_scale = Instant::now();
        for y in &mut acc {
            *y *= self.scale;
        }
        stats.s2_decode_nanos += t_scale.elapsed().as_nanos() as u64;
        probe.record_sample(stats);
        Ok(acc)
    }

    /// Encodes one tile's wordlines for every sample of a block into the
    /// scratch staging buffers: held voltages at stride `tile.rows`, and
    /// the per-sample non-zero index lists behind a shared prefix-bounds
    /// array. Each sample sees the exact encode sequence of
    /// [`BatchPlan::forward_one`]; only the buffer it lands in differs.
    /// Returns the number of zero-activation skips taken.
    fn encode_block(
        &self,
        tile: &TilePlan,
        activations: &[f64],
        samples: usize,
        scratch: &mut BatchScratch,
    ) -> u64 {
        let mut skips = 0u64;
        scratch.v_in_block.clear();
        scratch.nz_idx.clear();
        scratch.nz_bounds.clear();
        scratch.nz_bounds.push(0);
        for b in 0..samples {
            let base = b * self.rows + tile.row_start;
            for (p, &l) in tile.row_source.iter().enumerate() {
                let a = activations[base + l].clamp(0.0, 1.0);
                if a == 0.0 {
                    scratch.v_in_block.push(0.0);
                    skips += 1;
                    continue;
                }
                let t = match self.encoding {
                    SpikeEncoding::LinearTime => a * self.t_max,
                    SpikeEncoding::PassThrough => {
                        Seconds(-self.tau * (1.0 - a * self.v_ref / self.vs).ln()).0
                    }
                };
                let v = self.vs * (1.0 - (-t / self.tau).exp());
                scratch.v_in_block.push(v);
                if v != 0.0 {
                    scratch.nz_idx.push(p as u32);
                }
            }
            scratch.nz_bounds.push(scratch.nz_idx.len());
        }
        skips
    }

    /// Executes `samples` logical MVMs in one pass over the tile data —
    /// the cache-blocked kernel. `activations` holds the samples
    /// back-to-back (`samples × rows`), `out` receives the outputs
    /// back-to-back (`samples × cols`).
    ///
    /// Per tile, the S1 encode runs for every sample of the block first,
    /// then each column's conductance pair is loaded **once** and swept
    /// across all samples, so tile data is read from cache instead of
    /// being re-streamed from memory per sample. For every sample the
    /// per-(tile, column) contributions still accumulate in tile order
    /// with the row-order weighted sums of `forward_one`, so the result
    /// is **bit-identical** to calling [`BatchPlan::forward_one`] on
    /// each sample — for any block size.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == samples * rows` and
    /// `out.len() == samples * cols`.
    pub fn forward_block(
        &self,
        activations: &[f64],
        samples: usize,
        out: &mut [f64],
        scratch: &mut BatchScratch,
    ) -> Result<(), ResipeError> {
        if activations.len() != samples * self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: samples * self.rows,
                got: activations.len(),
            });
        }
        if out.len() != samples * self.cols {
            return Err(ResipeError::DimensionMismatch {
                expected: samples * self.cols,
                got: out.len(),
            });
        }
        out.fill(0.0);
        for tile in &self.tiles {
            self.encode_block(tile, activations, samples, scratch);
            for j in 0..tile.cols {
                let col = j * tile.rows..(j + 1) * tile.rows;
                let gp = &tile.g_plus[col.clone()];
                let gm = &tile.g_minus[col];
                for b in 0..samples {
                    let v_in = &scratch.v_in_block[b * tile.rows..(b + 1) * tile.rows];
                    let nz = &scratch.nz_idx[scratch.nz_bounds[b]..scratch.nz_bounds[b + 1]];
                    let mut wp = 0.0f64;
                    let mut wm = 0.0f64;
                    for &p in nz {
                        let v = v_in[p as usize];
                        wp += v * gp[p as usize];
                        wm += v * gm[p as usize];
                    }
                    let vp = Self::v_out(wp, tile.g_total_plus[j], tile.charge_plus[j]);
                    let vm = Self::v_out(wm, tile.g_total_minus[j], tile.charge_minus[j]);
                    let d_plus = if vp == 0.0 {
                        tile.d0_plus[j]
                    } else {
                        self.decode_column(vp, tile.offset_plus[j], tile.k_plus[j])
                    };
                    let d_minus = if vm == 0.0 {
                        tile.d0_minus[j]
                    } else {
                        self.decode_column(vm, tile.offset_minus[j], tile.k_minus[j])
                    };
                    out[b * self.cols + j] += d_plus - d_minus;
                }
            }
        }
        for y in out.iter_mut() {
            *y *= self.scale;
        }
        Ok(())
    }

    /// [`BatchPlan::forward_block`] with an optional telemetry probe.
    ///
    /// With `None` this *is* `forward_block`. With a probe, the per-tile
    /// work is split into a block encode pass, a crossbar pass staging
    /// every `(column, sample)` voltage pair, and a decode pass, so the
    /// three stages can be timed separately and every column decode is
    /// observed — the same staging argument as
    /// [`BatchPlan::forward_one_probed`] keeps the outputs
    /// **bit-identical**. The probe's layer counters advance by the
    /// whole block (`calls += samples`), and the global kernel counters
    /// record one block of `samples` samples streaming
    /// [`BatchPlan::tile_stream_bytes`] conductance bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == samples * rows` and
    /// `out.len() == samples * cols`.
    pub fn forward_block_probed(
        &self,
        activations: &[f64],
        samples: usize,
        out: &mut [f64],
        scratch: &mut BatchScratch,
        probe: Option<&LayerProbe>,
    ) -> Result<(), ResipeError> {
        let Some(probe) = probe else {
            return self.forward_block(activations, samples, out, scratch);
        };
        if activations.len() != samples * self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: samples * self.rows,
                got: activations.len(),
            });
        }
        if out.len() != samples * self.cols {
            return Err(ResipeError::DimensionMismatch {
                expected: samples * self.cols,
                got: out.len(),
            });
        }
        let mut stats = SampleStats {
            mvms: (samples * 2 * self.tiles.len()) as u64,
            ..SampleStats::default()
        };
        out.fill(0.0);
        for tile in &self.tiles {
            let t0 = Instant::now();
            stats.zero_activation_skips += self.encode_block(tile, activations, samples, scratch);
            let t1 = Instant::now();
            scratch.v_cols_block.clear();
            for j in 0..tile.cols {
                let col = j * tile.rows..(j + 1) * tile.rows;
                let gp = &tile.g_plus[col.clone()];
                let gm = &tile.g_minus[col];
                for b in 0..samples {
                    let v_in = &scratch.v_in_block[b * tile.rows..(b + 1) * tile.rows];
                    let nz = &scratch.nz_idx[scratch.nz_bounds[b]..scratch.nz_bounds[b + 1]];
                    let mut wp = 0.0f64;
                    let mut wm = 0.0f64;
                    for &p in nz {
                        let v = v_in[p as usize];
                        wp += v * gp[p as usize];
                        wm += v * gm[p as usize];
                    }
                    scratch.v_cols_block.push((
                        Self::v_out(wp, tile.g_total_plus[j], tile.charge_plus[j]),
                        Self::v_out(wm, tile.g_total_minus[j], tile.charge_minus[j]),
                    ));
                }
            }
            let t2 = Instant::now();
            for j in 0..tile.cols {
                for b in 0..samples {
                    let (vp, vm) = scratch.v_cols_block[j * samples + b];
                    let (d_plus, tr_p) =
                        self.decode_column_traced(vp, tile.offset_plus[j], tile.k_plus[j]);
                    let (d_minus, tr_m) =
                        self.decode_column_traced(vm, tile.offset_minus[j], tile.k_minus[j]);
                    for tr in [&tr_p, &tr_m] {
                        probe.record_decode(tr.v_eff, tr.t_obs);
                        stats.comparator_offset_rejects += u64::from(tr.offset_clamped);
                        stats.saturated_decodes += u64::from(tr.saturated);
                    }
                    out[b * self.cols + j] += d_plus - d_minus;
                }
            }
            let t3 = Instant::now();
            stats.s1_encode_nanos += (t1 - t0).as_nanos() as u64;
            stats.crossbar_nanos += (t2 - t1).as_nanos() as u64;
            stats.s2_decode_nanos += (t3 - t2).as_nanos() as u64;
        }
        let t_scale = Instant::now();
        for y in out.iter_mut() {
            *y *= self.scale;
        }
        stats.s2_decode_nanos += t_scale.elapsed().as_nanos() as u64;
        probe.record_block(stats, samples as u64);
        probe.record_kernel(samples as u64, self.tile_stream_bytes, Backend::Scalar);
        Ok(())
    }

    /// [`BatchPlan::forward_one`] executed by the selected
    /// [`Backend`]. [`Backend::Scalar`] *is* `forward_one`;
    /// [`Backend::VectorF32`] returns the same bits through the lane
    /// kernel; [`Backend::FixedI32`] stays within
    /// [`BatchPlan::backend_error_bound`] of the reference.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == rows`.
    pub fn forward_one_with(
        &self,
        backend: Backend,
        activations: &[f64],
        scratch: &mut BatchScratch,
    ) -> Result<Vec<f64>, ResipeError> {
        if backend == Backend::Scalar {
            return self.forward_one(activations, scratch);
        }
        let mut out = vec![0.0f64; self.cols];
        self.forward_block_with(backend, activations, 1, &mut out, scratch)?;
        Ok(out)
    }

    /// [`BatchPlan::forward_block`] executed by the selected
    /// [`Backend`]. The scalar arm delegates to the untouched reference
    /// kernel; the other backends run the shared
    /// encode → prepare → stage → decode pipeline with their own
    /// computation stage (see [`crate::kernel`] for the per-backend
    /// equivalence guarantees).
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == samples * rows` and
    /// `out.len() == samples * cols`.
    pub fn forward_block_with(
        &self,
        backend: Backend,
        activations: &[f64],
        samples: usize,
        out: &mut [f64],
        scratch: &mut BatchScratch,
    ) -> Result<(), ResipeError> {
        if backend == Backend::Scalar {
            return self.forward_block(activations, samples, out, scratch);
        }
        self.run_block_kernel(backend, activations, samples, out, scratch, None)
    }

    /// [`BatchPlan::forward_block_probed`] executed by the selected
    /// [`Backend`]: the probed counterpart of
    /// [`BatchPlan::forward_block_with`]. The probe's kernel counters
    /// record the block against the backend that ran it (per-backend
    /// block counters, backend-specific streamed bytes).
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `activations.len() == samples * rows` and
    /// `out.len() == samples * cols`.
    pub fn forward_block_probed_with(
        &self,
        backend: Backend,
        activations: &[f64],
        samples: usize,
        out: &mut [f64],
        scratch: &mut BatchScratch,
        probe: Option<&LayerProbe>,
    ) -> Result<(), ResipeError> {
        if backend == Backend::Scalar {
            return self.forward_block_probed(activations, samples, out, scratch, probe);
        }
        self.run_block_kernel(backend, activations, samples, out, scratch, probe)
    }

    /// The generic staged block pipeline behind the non-scalar
    /// backends: shared S1 block encode, backend prepare + compute
    /// stages filling the `(V_out⁺, V_out⁻)` staging buffer, then the
    /// shared decode pass. Always decoding (no `d0` fast path) returns
    /// the same bits as the fused scalar kernel — the zero-voltage fast
    /// path reuses a value hoisted from this same pure function — which
    /// is what lets one decode pass serve every backend.
    fn run_block_kernel(
        &self,
        backend: Backend,
        activations: &[f64],
        samples: usize,
        out: &mut [f64],
        scratch: &mut BatchScratch,
        probe: Option<&LayerProbe>,
    ) -> Result<(), ResipeError> {
        if activations.len() != samples * self.rows {
            return Err(ResipeError::DimensionMismatch {
                expected: samples * self.rows,
                got: activations.len(),
            });
        }
        if out.len() != samples * self.cols {
            return Err(ResipeError::DimensionMismatch {
                expected: samples * self.cols,
                got: out.len(),
            });
        }
        let kernel = backend.kernel();
        let mut stats = SampleStats {
            mvms: (samples * 2 * self.tiles.len()) as u64,
            ..SampleStats::default()
        };
        out.fill(0.0);
        for ti in 0..self.tiles.len() {
            let t0 = Instant::now();
            stats.zero_activation_skips +=
                self.encode_block(&self.tiles[ti], activations, samples, scratch);
            kernel.prepare_tile_block(self, ti, samples, scratch);
            let t1 = Instant::now();
            scratch.v_cols_block.clear();
            scratch
                .v_cols_block
                .resize(self.tiles[ti].cols * samples, (0.0, 0.0));
            kernel.stage_tile_block(self, ti, samples, scratch);
            let t2 = Instant::now();
            let tile = &self.tiles[ti];
            for j in 0..tile.cols {
                for b in 0..samples {
                    let (vp, vm) = scratch.v_cols_block[j * samples + b];
                    let (d_plus, tr_p) =
                        self.decode_column_traced(vp, tile.offset_plus[j], tile.k_plus[j]);
                    let (d_minus, tr_m) =
                        self.decode_column_traced(vm, tile.offset_minus[j], tile.k_minus[j]);
                    if let Some(probe) = probe {
                        for tr in [&tr_p, &tr_m] {
                            probe.record_decode(tr.v_eff, tr.t_obs);
                            stats.comparator_offset_rejects += u64::from(tr.offset_clamped);
                            stats.saturated_decodes += u64::from(tr.saturated);
                        }
                    }
                    out[b * self.cols + j] += d_plus - d_minus;
                }
            }
            let t3 = Instant::now();
            stats.s1_encode_nanos += (t1 - t0).as_nanos() as u64;
            stats.crossbar_nanos += (t2 - t1).as_nanos() as u64;
            stats.s2_decode_nanos += (t3 - t2).as_nanos() as u64;
        }
        let t_scale = Instant::now();
        for y in out.iter_mut() {
            *y *= self.scale;
        }
        stats.s2_decode_nanos += t_scale.elapsed().as_nanos() as u64;
        if let Some(probe) = probe {
            probe.record_block(stats, samples as u64);
            probe.record_kernel(samples as u64, kernel.stream_bytes(self), backend);
        }
        Ok(())
    }

    /// The scalar computation stage in staged form: the sparse
    /// non-zero-index walk of [`BatchPlan::forward_block`] writing the
    /// sampled voltage pairs into the staging buffer instead of fusing
    /// the decode.
    pub(crate) fn stage_tile_block_scalar(
        &self,
        ti: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        let tile = &self.tiles[ti];
        for j in 0..tile.cols {
            let col = j * tile.rows..(j + 1) * tile.rows;
            let gp = &tile.g_plus[col.clone()];
            let gm = &tile.g_minus[col];
            for b in 0..samples {
                let v_in = &scratch.v_in_block[b * tile.rows..(b + 1) * tile.rows];
                let nz = &scratch.nz_idx[scratch.nz_bounds[b]..scratch.nz_bounds[b + 1]];
                let mut wp = 0.0f64;
                let mut wm = 0.0f64;
                for &p in nz {
                    let v = v_in[p as usize];
                    wp += v * gp[p as usize];
                    wm += v * gm[p as usize];
                }
                scratch.v_cols_block[j * samples + b] = (
                    Self::v_out(wp, tile.g_total_plus[j], tile.charge_plus[j]),
                    Self::v_out(wm, tile.g_total_minus[j], tile.charge_minus[j]),
                );
            }
        }
    }

    /// The [`Backend::VectorF32`] computation stage: [`VECTOR_LANES`]
    /// samples advance per conductance load, each lane's accumulator
    /// adding its products in the reference ascending row order, and the
    /// dense rows replace the non-zero index walk (zero-voltage rows
    /// contribute exact `±0.0` products, which cannot flip an
    /// accumulator that is never `-0.0`). Bit-identical to
    /// [`BatchPlan::stage_tile_block_scalar`] by construction.
    pub(crate) fn stage_tile_block_vector(
        &self,
        ti: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        let tile = &self.tiles[ti];
        let rows = tile.rows;
        for j in 0..tile.cols {
            let col = j * rows..(j + 1) * rows;
            let gp = &tile.g_plus[col.clone()];
            let gm = &tile.g_minus[col];
            let (gtp, chp) = (tile.g_total_plus[j], tile.charge_plus[j]);
            let (gtm, chm) = (tile.g_total_minus[j], tile.charge_minus[j]);
            let mut b = 0usize;
            while b + VECTOR_LANES <= samples {
                let mut wp = [0.0f64; VECTOR_LANES];
                let mut wm = [0.0f64; VECTOR_LANES];
                let lanes: [&[f64]; VECTOR_LANES] = std::array::from_fn(|l| {
                    &scratch.v_in_block[(b + l) * rows..(b + l + 1) * rows]
                });
                for (p, (&gpv, &gmv)) in gp.iter().zip(gm).enumerate() {
                    for l in 0..VECTOR_LANES {
                        let v = lanes[l][p];
                        wp[l] += v * gpv;
                        wm[l] += v * gmv;
                    }
                }
                for l in 0..VECTOR_LANES {
                    scratch.v_cols_block[j * samples + b + l] =
                        (Self::v_out(wp[l], gtp, chp), Self::v_out(wm[l], gtm, chm));
                }
                b += VECTOR_LANES;
            }
            while b < samples {
                let v_in = &scratch.v_in_block[b * rows..(b + 1) * rows];
                let mut swp = 0.0f64;
                let mut swm = 0.0f64;
                for (p, (&gpv, &gmv)) in gp.iter().zip(gm).enumerate() {
                    let v = v_in[p];
                    swp += v * gpv;
                    swm += v * gmv;
                }
                scratch.v_cols_block[j * samples + b] =
                    (Self::v_out(swp, gtp, chp), Self::v_out(swm, gtm, chm));
                b += 1;
            }
        }
    }

    /// The [`Backend::FixedI32`] prepare stage: rounds the block's held
    /// wordline voltages to `i32` codes of `v_lsb` volts each. Codes
    /// never exceed `2^FIXED_QBITS` because held voltages live in
    /// `[0, V_s)`.
    pub(crate) fn quantize_block_inputs(&self, scratch: &mut BatchScratch) {
        scratch.q_in_block.clear();
        for &v in &scratch.v_in_block {
            scratch.q_in_block.push((v / self.v_lsb).round() as i32);
        }
    }

    /// The [`Backend::FixedI32`] computation stage: an exact `i64` dot
    /// product of the quantized voltage and conductance codes,
    /// dequantized once per `(column, sample)` and fed through the same
    /// analog charge division as the reference. Products are bounded by
    /// `2^(2·FIXED_QBITS)`, so the accumulator cannot overflow below
    /// `2^33` wordlines per tile.
    pub(crate) fn stage_tile_block_fixed(
        &self,
        ti: usize,
        samples: usize,
        scratch: &mut BatchScratch,
    ) {
        let tile = &self.tiles[ti];
        let ft = &self.fixed_tiles()[ti];
        let rows = tile.rows;
        for j in 0..tile.cols {
            let col = j * rows..(j + 1) * rows;
            let qp = &ft.q_plus[col.clone()];
            let qm = &ft.q_minus[col];
            for b in 0..samples {
                let qv = &scratch.q_in_block[b * rows..(b + 1) * rows];
                let mut ap = 0i64;
                let mut am = 0i64;
                for (p, (&qpv, &qmv)) in qp.iter().zip(qm).enumerate() {
                    let v = i64::from(qv[p]);
                    ap += v * i64::from(qpv);
                    am += v * i64::from(qmv);
                }
                scratch.v_cols_block[j * samples + b] = (
                    Self::v_out(
                        ap as f64 * ft.w_scale,
                        tile.g_total_plus[j],
                        tile.charge_plus[j],
                    ),
                    Self::v_out(
                        am as f64 * ft.w_scale,
                        tile.g_total_minus[j],
                        tile.charge_minus[j],
                    ),
                );
            }
        }
    }

    /// The lazily built integer tile mirrors of the fixed-point backend.
    fn fixed_tiles(&self) -> &[FixedTile] {
        self.fixed.get_or_init(|| {
            self.tiles
                .iter()
                .map(|t| {
                    let g_max = t
                        .g_plus
                        .iter()
                        .chain(&t.g_minus)
                        .fold(f64::MIN_POSITIVE, |m, &g| m.max(g));
                    let g_lsb = g_max / FIXED_LEVELS;
                    let quantize =
                        |gs: &[f64]| gs.iter().map(|&g| (g / g_lsb).round() as i32).collect();
                    FixedTile {
                        q_plus: quantize(&t.g_plus),
                        q_minus: quantize(&t.g_minus),
                        g_lsb,
                        w_scale: self.v_lsb * g_lsb,
                    }
                })
                .collect()
        })
    }

    /// Worst-case absolute deviation of the selected backend from the
    /// scalar reference, per logical output column, on *any* valid
    /// input. Exact backends return all-zero bounds; the documented
    /// [`Backend::FixedI32`] bound is, per column `j` and differential
    /// arm of each tile:
    ///
    /// * weighted-sum quantization
    ///   `Δw ≤ ΣG_j · v_lsb/2 + rows · (V_s · g_lsb/2 + v_lsb·g_lsb/4)`
    ///   (each held voltage is within `v_lsb/2` of its code, each
    ///   conductance within `g_lsb/2`, voltages below `V_s`);
    /// * through the charge division, `Δv_out = (Δw / ΣG_j) · charge_j`;
    /// * through the decode — a monotone 1-Lipschitz map of the clamped
    ///   comparator voltage, plus `V_s · q / τ_gd` when spike times are
    ///   quantized to `q` (time rounding moves each decode by at most
    ///   `q/2 · V_s/τ_gd`), plus a `10⁻¹² V_s` float-evaluation
    ///   allowance — divided by the column constant `k_j`;
    /// * summed over both arms and all tiles, scaled by the digital
    ///   rescale, with a `1 + 10⁻⁹` safety factor for `f64` rounding in
    ///   the comparison itself.
    ///
    /// The `backend_equivalence` proptests pin every fixed-point output
    /// inside this bound across shapes, block sizes and the full
    /// non-ideality chain.
    pub fn backend_error_bound(&self, backend: Backend) -> Vec<f64> {
        if backend.is_exact() {
            return vec![0.0; self.cols];
        }
        let dv = self.v_lsb / 2.0;
        let tq = self.time_quantum.map_or(0.0, |q| self.vs * q / self.tau);
        let fixed = self.fixed_tiles();
        let mut bound = vec![0.0f64; self.cols];
        for (tile, ft) in self.tiles.iter().zip(fixed) {
            let dg = ft.g_lsb / 2.0;
            let per_row = self.vs * dg + dv * dg;
            for (j, slot) in bound.iter_mut().enumerate().take(tile.cols) {
                for (g_total, charge, k) in [
                    (tile.g_total_plus[j], tile.charge_plus[j], tile.k_plus[j]),
                    (tile.g_total_minus[j], tile.charge_minus[j], tile.k_minus[j]),
                ] {
                    if g_total == 0.0 {
                        // Both backends sample exactly V_out = 0 here.
                        continue;
                    }
                    let dw = g_total * dv + tile.rows as f64 * per_row;
                    let dvout = dw / g_total * charge;
                    *slot += (dvout + tq + 1e-12 * self.vs) / k;
                }
            }
        }
        let s = self.scale.abs() * (1.0 + 1e-9);
        for b in &mut bound {
            *b *= s;
        }
        bound
    }
}

/// Observation sidecar of one traced column decode.
#[derive(Debug, Clone, Copy)]
struct DecodeTrace {
    /// Effective comparator voltage after offset and range clamp.
    v_eff: f64,
    /// Observed (possibly quantized, slice-limited) spike time.
    t_obs: f64,
    /// `true` when the clamp changed `v_out + offset`.
    offset_clamped: bool,
    /// `true` when the spike time saturated at the slice end.
    saturated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResipeConfig;
    use crate::mapping::TileMapper;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> ResipeEngine {
        ResipeEngine::new(ResipeConfig::paper())
    }

    fn exact_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "column {i}: {x:e} vs {y:e} differ in bits"
            );
        }
    }

    #[test]
    fn plan_matches_sequential_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        let weights: Vec<f64> = (0..64 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 64, 5).unwrap();
        let e = engine();
        for encoding in [SpikeEncoding::LinearTime, SpikeEncoding::PassThrough] {
            let plan = BatchPlan::new(&e, &mapped, encoding);
            let mut scratch = plan.scratch();
            for _ in 0..5 {
                let a: Vec<f64> = (0..64).map(|_| rng.gen_range(0.0..1.0)).collect();
                let seq = mapped.forward(&e, &a, encoding).unwrap();
                let bat = plan.forward_one(&a, &mut scratch).unwrap();
                exact_eq(&seq, &bat);
            }
        }
    }

    #[test]
    fn plan_matches_under_nonidealities() {
        let mut rng = StdRng::seed_from_u64(13);
        let weights: Vec<f64> = (0..48 * 3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let model = resipe_reram::VariationModel::device_to_device(0.15).unwrap();
        let mapped = TileMapper::paper()
            .with_spare_cols(2)
            .map(&weights, 48, 3)
            .unwrap()
            .with_faults(0.02, 4, 99)
            .unwrap()
            .perturbed(&model, 7)
            .with_comparator_offsets(0.01, 21)
            .with_time_quantization(Seconds(1e-9));
        let e = engine();
        let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::PassThrough);
        let mut scratch = plan.scratch();
        for _ in 0..5 {
            // Sparse activations exercise the zero-skip path.
            let a: Vec<f64> = (0..48)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.5 {
                        0.0
                    } else {
                        rng.gen_range(0.0..1.0)
                    }
                })
                .collect();
            let seq = mapped.forward(&e, &a, SpikeEncoding::PassThrough).unwrap();
            let bat = plan.forward_one(&a, &mut scratch).unwrap();
            exact_eq(&seq, &bat);
        }
    }

    #[test]
    fn probed_path_is_bit_identical_and_records() {
        let mut rng = StdRng::seed_from_u64(17);
        let weights: Vec<f64> = (0..48 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper()
            .map(&weights, 48, 4)
            .unwrap()
            .with_comparator_offsets(0.01, 5);
        let e = engine();
        let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::PassThrough);
        let telemetry = crate::telemetry::Telemetry::enabled();
        let cfg = e.config();
        let probe = telemetry
            .layer_probe(0, cfg.slice().0, cfg.vs().0)
            .expect("enabled probe");
        let mut scratch = plan.scratch();
        let mut samples = 0u64;
        for _ in 0..4 {
            let a: Vec<f64> = (0..48)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.4 {
                        0.0
                    } else {
                        rng.gen_range(0.0..1.0)
                    }
                })
                .collect();
            let plain = plan.forward_one(&a, &mut scratch).unwrap();
            let probed = plan
                .forward_one_probed(&a, &mut scratch, Some(&probe))
                .unwrap();
            exact_eq(&plain, &probed);
            samples += 1;
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.layers.len(), 1);
        let l = snap.layers[0];
        assert_eq!(l.calls, samples);
        assert_eq!(l.mvms, samples * mapped.mvms_per_forward() as u64);
        assert!(l.zero_activation_skips > 0, "sparse inputs must skip");
        // Every decoded column lands in both histograms (2 arrays/col).
        let decodes = samples * 2 * 4 * plan.tiles.len() as u64;
        assert_eq!(snap.t_out.total(), decodes);
        assert_eq!(snap.v_out.total(), decodes);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mapped = TileMapper::paper().map(&[0.5, -0.5], 2, 1).unwrap();
        let e = engine();
        let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::LinearTime);
        let mut scratch = plan.scratch();
        assert!(plan.forward_one(&[0.1], &mut scratch).is_err());
        let mut out = vec![0.0; 2];
        assert!(plan
            .forward_block(&[0.1; 3], 2, &mut out, &mut scratch)
            .is_err());
        assert!(plan
            .forward_block(&[0.1; 4], 2, &mut out[..1], &mut scratch)
            .is_err());
    }

    #[test]
    fn block_kernel_matches_forward_one_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(23);
        let weights: Vec<f64> = (0..80 * 6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let model = resipe_reram::VariationModel::device_to_device(0.12).unwrap();
        let mapped = TileMapper::paper()
            .with_spare_cols(2)
            .map(&weights, 80, 6)
            .unwrap()
            .with_faults(0.02, 4, 31)
            .unwrap()
            .perturbed(&model, 9)
            .with_comparator_offsets(0.01, 17)
            .with_time_quantization(Seconds(1e-9));
        let e = engine();
        for encoding in [SpikeEncoding::LinearTime, SpikeEncoding::PassThrough] {
            let plan = BatchPlan::new(&e, &mapped, encoding);
            let mut scratch = plan.scratch();
            let n = 13usize;
            let a: Vec<f64> = (0..n * 80)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.4 {
                        0.0
                    } else {
                        rng.gen_range(0.0..1.0)
                    }
                })
                .collect();
            let mut reference = Vec::with_capacity(n * 6);
            for b in 0..n {
                reference.extend(
                    plan.forward_one(&a[b * 80..(b + 1) * 80], &mut scratch)
                        .unwrap(),
                );
            }
            for block in [1usize, 2, 3, 5, 8, 13, 64] {
                let mut out = vec![f64::NAN; n * 6];
                for start in (0..n).step_by(block) {
                    let b = block.min(n - start);
                    plan.forward_block(
                        &a[start * 80..(start + b) * 80],
                        b,
                        &mut out[start * 6..(start + b) * 6],
                        &mut scratch,
                    )
                    .unwrap();
                }
                exact_eq(&reference, &out);
            }
        }
    }

    #[test]
    fn probed_block_is_bit_identical_and_counts_whole_block() {
        let mut rng = StdRng::seed_from_u64(29);
        let weights: Vec<f64> = (0..48 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper()
            .map(&weights, 48, 4)
            .unwrap()
            .with_comparator_offsets(0.01, 5);
        let e = engine();
        let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::PassThrough);
        let telemetry = crate::telemetry::Telemetry::enabled();
        let cfg = e.config();
        let probe = telemetry
            .layer_probe(0, cfg.slice().0, cfg.vs().0)
            .expect("enabled probe");
        let mut scratch = plan.scratch();
        let n = 7usize;
        let a: Vec<f64> = (0..n * 48).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut plain = vec![0.0; n * 4];
        plan.forward_block(&a, n, &mut plain, &mut scratch).unwrap();
        let mut probed = vec![0.0; n * 4];
        plan.forward_block_probed(&a, n, &mut probed, &mut scratch, Some(&probe))
            .unwrap();
        exact_eq(&plain, &probed);
        let snap = telemetry.snapshot();
        let l = snap.layers[0];
        assert_eq!(l.calls, n as u64, "one block must count all its samples");
        assert_eq!(l.mvms, (n * mapped.mvms_per_forward()) as u64);
        assert_eq!(snap.counters.kernel_blocks, 1);
        assert_eq!(snap.counters.kernel_block_samples, n as u64);
        assert_eq!(
            snap.counters.kernel_bytes_streamed,
            plan.tile_stream_bytes()
        );
        assert!(plan.tile_stream_bytes() > 0);
    }

    /// A mapped layer carrying the full non-ideality chain, shared by
    /// the backend tests below.
    fn nonideal_mapped(rows: usize, cols: usize, quantized: bool) -> MappedWeights {
        let mut rng = StdRng::seed_from_u64(41);
        let weights: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let model = resipe_reram::VariationModel::device_to_device(0.12).unwrap();
        let mapped = TileMapper::paper()
            .with_spare_cols(2)
            .map(&weights, rows, cols)
            .unwrap()
            .with_faults(0.02, 4, 31)
            .unwrap()
            .perturbed(&model, 9)
            .with_comparator_offsets(0.01, 17);
        if quantized {
            mapped.with_time_quantization(Seconds(1e-9))
        } else {
            mapped
        }
    }

    #[test]
    fn vector_backend_is_bit_identical_across_blocks() {
        let mut rng = StdRng::seed_from_u64(43);
        let mapped = nonideal_mapped(80, 6, true);
        let e = engine();
        for encoding in [SpikeEncoding::LinearTime, SpikeEncoding::PassThrough] {
            let plan = BatchPlan::new(&e, &mapped, encoding);
            let mut scratch = plan.scratch();
            let n = 11usize;
            let a: Vec<f64> = (0..n * 80)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.4 {
                        0.0
                    } else {
                        rng.gen_range(0.0..1.0)
                    }
                })
                .collect();
            let mut reference = Vec::with_capacity(n * 6);
            for b in 0..n {
                reference.extend(
                    plan.forward_one(&a[b * 80..(b + 1) * 80], &mut scratch)
                        .unwrap(),
                );
            }
            // Blocks below, at, and above the lane width exercise both
            // the unrolled lanes and the scalar remainder loop.
            for block in [1usize, 3, 4, 5, 8, 11] {
                let mut out = vec![f64::NAN; n * 6];
                for start in (0..n).step_by(block) {
                    let b = block.min(n - start);
                    plan.forward_block_with(
                        Backend::VectorF32,
                        &a[start * 80..(start + b) * 80],
                        b,
                        &mut out[start * 6..(start + b) * 6],
                        &mut scratch,
                    )
                    .unwrap();
                }
                exact_eq(&reference, &out);
            }
        }
    }

    #[test]
    fn fixed_backend_stays_within_documented_bound() {
        let mut rng = StdRng::seed_from_u64(47);
        let e = engine();
        for quantized in [false, true] {
            let mapped = nonideal_mapped(64, 5, quantized);
            let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::PassThrough);
            let bound = plan.backend_error_bound(Backend::FixedI32);
            assert!(bound.iter().all(|&b| b > 0.0 && b.is_finite()));
            let mut scratch = plan.scratch();
            for _ in 0..8 {
                let a: Vec<f64> = (0..64).map(|_| rng.gen_range(0.0..1.0)).collect();
                let exact = plan.forward_one(&a, &mut scratch).unwrap();
                let fixed = plan
                    .forward_one_with(Backend::FixedI32, &a, &mut scratch)
                    .unwrap();
                for (j, ((x, f), b)) in exact.iter().zip(&fixed).zip(&bound).enumerate() {
                    let dev = (x - f).abs();
                    assert!(
                        dev <= *b,
                        "column {j}: |{x:e} - {f:e}| = {dev:e} exceeds bound {b:e} \
                         (quantized: {quantized})"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_backends_report_zero_bound() {
        let mapped = nonideal_mapped(32, 3, false);
        let e = engine();
        let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::LinearTime);
        assert!(plan
            .backend_error_bound(Backend::Scalar)
            .iter()
            .all(|&b| b == 0.0));
        assert!(plan
            .backend_error_bound(Backend::VectorF32)
            .iter()
            .all(|&b| b == 0.0));
    }

    #[test]
    fn probed_backend_blocks_count_per_backend() {
        let mut rng = StdRng::seed_from_u64(53);
        let weights: Vec<f64> = (0..48 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mapped = TileMapper::paper().map(&weights, 48, 4).unwrap();
        let e = engine();
        let plan = BatchPlan::new(&e, &mapped, SpikeEncoding::PassThrough);
        let telemetry = crate::telemetry::Telemetry::enabled();
        let cfg = e.config();
        let probe = telemetry
            .layer_probe(0, cfg.slice().0, cfg.vs().0)
            .expect("enabled probe");
        let mut scratch = plan.scratch();
        let n = 6usize;
        let a: Vec<f64> = (0..n * 48).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut plain = vec![0.0; n * 4];
        plan.forward_block_with(Backend::VectorF32, &a, n, &mut plain, &mut scratch)
            .unwrap();
        let mut probed = vec![0.0; n * 4];
        plan.forward_block_probed_with(
            Backend::VectorF32,
            &a,
            n,
            &mut probed,
            &mut scratch,
            Some(&probe),
        )
        .unwrap();
        exact_eq(&plain, &probed);
        let mut fixed = vec![0.0; n * 4];
        plan.forward_block_probed_with(
            Backend::FixedI32,
            &a,
            n,
            &mut fixed,
            &mut scratch,
            Some(&probe),
        )
        .unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters.kernel_blocks, 2);
        assert_eq!(snap.counters.backend_vector_f32_blocks, 1);
        assert_eq!(snap.counters.backend_fixed_i32_blocks, 1);
        assert_eq!(snap.counters.backend_scalar_blocks, 0);
        // The vector backend streams the f64 mirrors, the fixed backend
        // its half-width i32 codes.
        assert_eq!(
            snap.counters.kernel_bytes_streamed,
            plan.tile_stream_bytes() + plan.tile_stream_bytes() / 2
        );
    }
}
