//! The ReSiPE engine: single-spiking MAC and MVM.
//!
//! [`ResipeEngine`] chains the S1 → computation → S2 stages of the paper
//! into closed form. Two evaluation paths exist:
//!
//! * [`ResipeEngine::mac`] / [`ResipeEngine::mvm`] — the **exact** physics
//!   (exponential ramps and charging, Eqs. 1–4), which is what the silicon
//!   produces and what all accuracy results use;
//! * [`ResipeEngine::mac_linear`] / [`ResipeEngine::mvm_linear`] — the
//!   **ideal** linear MAC of Eq. 5/6, `t_out = (Δt/C_cog) Σ t_in G`, used
//!   as the reference when quantifying non-linearity (Fig. 5).
//!
//! The exact path is validated against the MNA transient simulator in
//! [`crate::circuit`].

use serde::{Deserialize, Serialize};

use resipe_analog::units::{Seconds, Siemens, Volts};
use resipe_reram::crossbar::Crossbar;

use crate::cog::ColumnOutputGenerator;
use crate::config::ResipeConfig;
use crate::error::ResipeError;
use crate::gd::{GlobalDecoder, RampModel};
use crate::spike::SpikeTime;

/// The outcome of one single-spiking MAC (one bitline of one MVM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacResult {
    /// The output spike time within S2.
    pub t_out: Seconds,
    /// The sampled bitline voltage `V_out` that produced the spike.
    pub v_out: Volts,
    /// `true` if the GD ramp never reached `V_out` within the slice (the
    /// output clamped to the slice end).
    pub saturated: bool,
}

impl MacResult {
    /// The output as a [`SpikeTime`].
    pub fn spike(&self) -> SpikeTime {
        SpikeTime(self.t_out)
    }
}

/// A ReSiPE processing engine for a fixed circuit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResipeEngine {
    config: ResipeConfig,
    gd: GlobalDecoder,
    cog: ColumnOutputGenerator,
}

impl ResipeEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`ResipeEngine::try_new`] for fallible construction.
    pub fn new(config: ResipeConfig) -> ResipeEngine {
        ResipeEngine::try_new(config).expect("invalid ReSiPE configuration")
    }

    /// Creates an engine, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] for invalid parameters.
    pub fn try_new(config: ResipeConfig) -> Result<ResipeEngine, ResipeError> {
        Ok(ResipeEngine {
            config,
            gd: GlobalDecoder::new(config)?,
            cog: ColumnOutputGenerator::new(config)?,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ResipeConfig {
        &self.config
    }

    /// Switches the GD ramp model (exact vs. linearized) — for ablation.
    pub fn with_ramp_model(mut self, model: RampModel) -> ResipeEngine {
        self.gd = self.gd.with_model(model);
        self
    }

    fn check_times(&self, t_in: &[Seconds]) -> Result<(), ResipeError> {
        for t in t_in {
            if t.0 < 0.0 || t.0 > self.config.slice().0 || !t.0.is_finite() {
                return Err(ResipeError::SpikeOutOfSlice {
                    time: t.0,
                    slice: self.config.slice().0,
                });
            }
        }
        Ok(())
    }

    /// One exact single-spiking MAC: input spike times `t_in` through
    /// cell conductances `g`, producing the output spike time.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] for mismatched or empty
    /// inputs, or [`ResipeError::SpikeOutOfSlice`] for out-of-slice times.
    pub fn mac(&self, t_in: &[Seconds], g: &[Siemens]) -> Result<MacResult, ResipeError> {
        if t_in.len() != g.len() || t_in.is_empty() {
            return Err(ResipeError::DimensionMismatch {
                expected: t_in.len().max(1),
                got: g.len(),
            });
        }
        self.check_times(t_in)?;
        // S1: sample the ramp at each arrival time.
        let v_in: Vec<Volts> = t_in
            .iter()
            .map(|&t| self.gd.ramp_voltage(t))
            .collect::<Result<_, _>>()?;
        // Computation stage.
        let sample = self.cog.sample(&v_in, g)?;
        // S2: decode via the same ramp.
        let (spike, saturated) = self.cog.spike_for(&self.gd, sample.v_out);
        Ok(MacResult {
            t_out: spike.time(),
            v_out: sample.v_out,
            saturated,
        })
    }

    /// The ideal linear MAC of Eq. 5: `t_out = (Δt/C_cog) Σ t_in,i G_i`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResipeEngine::mac`].
    pub fn mac_linear(&self, t_in: &[Seconds], g: &[Siemens]) -> Result<Seconds, ResipeError> {
        if t_in.len() != g.len() || t_in.is_empty() {
            return Err(ResipeError::DimensionMismatch {
                expected: t_in.len().max(1),
                got: g.len(),
            });
        }
        self.check_times(t_in)?;
        let dot: f64 = t_in.iter().zip(g).map(|(t, gi)| t.0 * gi.0).sum();
        Ok(Seconds(self.config.gain().0 * dot))
    }

    /// One exact MVM over a programmed crossbar: every bitline's spike.
    ///
    /// The crossbar's effective conductances are gathered once into a
    /// column-major buffer (a single allocation for the whole MVM, not
    /// one `Vec` per column as `column_conductances` would produce) and
    /// every column then runs [`ResipeEngine::mac`] on its contiguous
    /// slice. Parallelism lives one level up, at the per-sample-block
    /// fan-out of the inference path — a single MVM is far too small to
    /// amortize a fork/join.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] unless
    /// `t_in.len() == crossbar.rows()`.
    pub fn mvm(
        &self,
        crossbar: &Crossbar,
        t_in: &[Seconds],
    ) -> Result<Vec<MacResult>, ResipeError> {
        if t_in.len() != crossbar.rows() {
            return Err(ResipeError::DimensionMismatch {
                expected: crossbar.rows(),
                got: t_in.len(),
            });
        }
        let rows = crossbar.rows();
        let g_cols = crossbar.effective_column_major()?;
        (0..crossbar.cols())
            .map(|col| self.mac(t_in, &g_cols[col * rows..(col + 1) * rows]))
            .collect()
    }

    /// The ideal linear MVM of Eq. 6 over a crossbar.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResipeEngine::mvm`].
    pub fn mvm_linear(
        &self,
        crossbar: &Crossbar,
        t_in: &[Seconds],
    ) -> Result<Vec<Seconds>, ResipeError> {
        if t_in.len() != crossbar.rows() {
            return Err(ResipeError::DimensionMismatch {
                expected: crossbar.rows(),
                got: t_in.len(),
            });
        }
        let rows = crossbar.rows();
        let g_cols = crossbar.effective_column_major()?;
        (0..crossbar.cols())
            .map(|col| self.mac_linear(t_in, &g_cols[col * rows..(col + 1) * rows]))
            .collect()
    }

    /// Fast exact MVM over a raw conductance matrix (row-major
    /// `rows × cols`, effective conductances in siemens). This is the hot
    /// path of the network-inference code: the S1 samples are computed
    /// once and reused across all columns, exactly as the shared GD does
    /// in hardware.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] for shape mismatches or
    /// [`ResipeError::SpikeOutOfSlice`] for out-of-slice times.
    pub fn mvm_matrix(
        &self,
        g_matrix: &[f64],
        rows: usize,
        cols: usize,
        t_in: &[Seconds],
    ) -> Result<Vec<MacResult>, ResipeError> {
        if t_in.len() != rows || g_matrix.len() != rows * cols {
            return Err(ResipeError::DimensionMismatch {
                expected: rows,
                got: t_in.len(),
            });
        }
        self.check_times(t_in)?;
        let v_in = self.ramp_samples(t_in);
        let mut out = Vec::with_capacity(cols);
        for col in 0..cols {
            let mut g_total = 0.0;
            let mut weighted = 0.0;
            for row in 0..rows {
                let g = g_matrix[row * cols + col];
                g_total += g;
                weighted += v_in[row] * g;
            }
            out.push(self.finish_column(g_total, weighted));
        }
        Ok(out)
    }

    /// [`ResipeEngine::mvm_matrix`] over a **column-major** conductance
    /// matrix (`cols` contiguous columns of `rows` entries each) — the
    /// SoA layout [`crate::mapping::Tile`] compiles. The inner loop reads
    /// both operands at unit stride, so it auto-vectorizes; the per-column
    /// accumulation still adds products in row order, making the result
    /// **bit-identical** to the row-major kernel on the same values.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] for shape mismatches or
    /// [`ResipeError::SpikeOutOfSlice`] for out-of-slice times.
    pub fn mvm_matrix_cm(
        &self,
        g_cols: &[f64],
        rows: usize,
        cols: usize,
        t_in: &[Seconds],
    ) -> Result<Vec<MacResult>, ResipeError> {
        if t_in.len() != rows || g_cols.len() != rows * cols {
            return Err(ResipeError::DimensionMismatch {
                expected: rows,
                got: t_in.len(),
            });
        }
        self.check_times(t_in)?;
        let v_in = self.ramp_samples(t_in);
        let mut out = Vec::with_capacity(cols);
        for col in 0..cols {
            let g_col = &g_cols[col * rows..(col + 1) * rows];
            let mut g_total = 0.0;
            let mut weighted = 0.0;
            for (row, &g) in g_col.iter().enumerate() {
                g_total += g;
                weighted += v_in[row] * g;
            }
            out.push(self.finish_column(g_total, weighted));
        }
        Ok(out)
    }

    /// Shared S1 ramp samples of one input spike train.
    fn ramp_samples(&self, t_in: &[Seconds]) -> Vec<f64> {
        let tau = self.config.tau_gd().0;
        let vs = self.config.vs().0;
        t_in.iter()
            .map(|t| vs * (1.0 - (-t.0 / tau).exp()))
            .collect()
    }

    /// The charge + ramp-inversion tail of one column (Eqs. 3–4), shared
    /// verbatim by the row-major and column-major matrix kernels.
    fn finish_column(&self, g_total: f64, weighted: f64) -> MacResult {
        let tau = self.config.tau_gd().0;
        let vs = self.config.vs().0;
        let dt_over_c = self.config.dt().0 / self.config.c_cog().0;
        let slice = self.config.slice().0;
        let v_out = if g_total == 0.0 {
            0.0
        } else {
            (weighted / g_total) * (1.0 - (-dt_over_c * g_total).exp())
        };
        // Invert the ramp (Eq. 4).
        let (t_out, saturated) = if v_out >= vs {
            (slice, true)
        } else {
            let t = -tau * (1.0 - v_out / vs).ln();
            if t > slice {
                (slice, true)
            } else {
                (t, false)
            }
        };
        MacResult {
            t_out: Seconds(t_out),
            v_out: Volts(v_out),
            saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resipe_reram::device::ResistanceWindow;

    fn engine() -> ResipeEngine {
        ResipeEngine::new(ResipeConfig::paper())
    }

    #[test]
    fn single_input_identity_like() {
        // With one input and a strongly-saturating conductance, V_out ≈
        // V_in, and the S1/S2 calibration cancellation makes t_out ≈ t_in.
        let e = engine();
        let t_in = Seconds(40e-9);
        let mac = e.mac(&[t_in], &[Siemens(1.6e-3)]).unwrap();
        assert!(!mac.saturated);
        assert!(
            (mac.t_out.0 - t_in.0).abs() < 0.5e-9,
            "t_out {} ns",
            mac.t_out.as_nanos()
        );
    }

    #[test]
    fn exact_tracks_linear_at_small_signals() {
        // Eq. 5 is the doubly-linearized limit: it needs BOTH RC stages in
        // their linear regions — t_in ≪ τ_gd = 10 ns AND
        // Δt·ΣG/C_cog ≪ 1 (ΣG ≪ 0.1 mS for the paper's values).
        let e = engine();
        let t_in = [Seconds(1e-9), Seconds(2e-9)];
        let g = [Siemens(4e-6), Siemens(6e-6)];
        let exact = e.mac(&t_in, &g).unwrap().t_out;
        let linear = e.mac_linear(&t_in, &g).unwrap();
        let rel = (exact.0 - linear.0).abs() / linear.0;
        assert!(rel < 0.2, "relative error {rel}");
    }

    #[test]
    fn exact_saturates_below_linear_at_high_conductance() {
        // The Fig. 5 effect: for ΣG > 1.6 mS the exact t_out falls below
        // the linear prediction; relative shortfall grows with ΣG.
        let e = engine();
        let t_in = [Seconds(60e-9); 2];
        let shortfall = |g_each: f64| {
            let g = [Siemens(g_each); 2];
            let exact = e.mac(&t_in, &g).unwrap().t_out.0;
            let linear = e.mac_linear(&t_in, &g).unwrap().0;
            (linear - exact) / linear
        };
        let low = shortfall(0.16e-3); // ΣG = 0.32 mS
        let high = shortfall(1.6e-3); // ΣG = 3.2 mS
        assert!(high > low, "shortfall {high} vs {low}");
    }

    #[test]
    fn monotonic_in_input_time() {
        let e = engine();
        let g = [Siemens(1e-4), Siemens(2e-4)];
        let mut prev = -1.0;
        for t_ns in [0.0, 10.0, 20.0, 40.0, 60.0, 80.0] {
            let mac = e.mac(&[Seconds(t_ns * 1e-9), Seconds(30e-9)], &g).unwrap();
            assert!(mac.t_out.0 > prev, "monotonic at t={t_ns} ns");
            prev = mac.t_out.0;
        }
    }

    #[test]
    fn zero_inputs_fire_at_zero() {
        let e = engine();
        let mac = e
            .mac(&[Seconds(0.0), Seconds(0.0)], &[Siemens(1e-4); 2])
            .unwrap();
        assert!(mac.t_out.0.abs() < 1e-15);
        assert_eq!(mac.v_out, Volts(0.0));
    }

    #[test]
    fn mvm_matches_per_column_mac() {
        let e = engine();
        let mut xb = Crossbar::new(4, 3, ResistanceWindow::WIDE);
        for r in 0..4 {
            for c in 0..3 {
                xb.program_fraction(r, c, ((r + c) as f64 / 6.0).min(1.0))
                    .unwrap();
            }
        }
        let t_in: Vec<Seconds> = (0..4).map(|i| Seconds(10e-9 * (i + 1) as f64)).collect();
        let mvm = e.mvm(&xb, &t_in).unwrap();
        assert_eq!(mvm.len(), 3);
        for (col, result) in mvm.iter().enumerate() {
            let g = xb.column_conductances(col).unwrap();
            let mac = e.mac(&t_in, &g).unwrap();
            assert_eq!(mac.t_out, result.t_out, "column {col}");
        }
    }

    #[test]
    fn mvm_matrix_matches_mvm() {
        let e = engine();
        let mut xb = resipe_reram::Crossbar::with_access_resistance(
            3,
            2,
            ResistanceWindow::WIDE,
            resipe_analog::units::Ohms(1e3),
        );
        xb.program_matrix(&[0.1, 0.9, 0.5, 0.3, 1.0, 0.0]).unwrap();
        let t_in = [Seconds(10e-9), Seconds(40e-9), Seconds(70e-9)];
        let via_crossbar = e.mvm(&xb, &t_in).unwrap();
        // Flatten effective conductances row-major.
        let mut g_flat = vec![0.0; 6];
        for r in 0..3 {
            for c in 0..2 {
                g_flat[r * 2 + c] = xb.effective_conductance(r, c).unwrap().0;
            }
        }
        let via_matrix = e.mvm_matrix(&g_flat, 3, 2, &t_in).unwrap();
        for (a, b) in via_crossbar.iter().zip(&via_matrix) {
            assert!((a.t_out.0 - b.t_out.0).abs() < 1e-18);
            assert!((a.v_out.0 - b.v_out.0).abs() < 1e-15);
        }
    }

    #[test]
    fn mvm_matrix_cm_is_bit_identical_to_row_major() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let e = engine();
        let mut rng = StdRng::seed_from_u64(23);
        for &(rows, cols) in &[(1usize, 1usize), (3, 2), (32, 7), (17, 33)] {
            let g_rm: Vec<f64> = (0..rows * cols)
                .map(|_| rng.gen_range(1e-6..20e-6))
                .collect();
            let mut g_cm = vec![0.0; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    g_cm[c * rows + r] = g_rm[r * cols + c];
                }
            }
            let t_in: Vec<Seconds> = (0..rows)
                .map(|_| Seconds(rng.gen_range(0.0..80e-9)))
                .collect();
            let rm = e.mvm_matrix(&g_rm, rows, cols, &t_in).unwrap();
            let cm = e.mvm_matrix_cm(&g_cm, rows, cols, &t_in).unwrap();
            for (a, b) in rm.iter().zip(&cm) {
                assert_eq!(a.t_out.0.to_bits(), b.t_out.0.to_bits());
                assert_eq!(a.v_out.0.to_bits(), b.v_out.0.to_bits());
                assert_eq!(a.saturated, b.saturated);
            }
        }
    }

    #[test]
    fn dimension_and_range_validation() {
        let e = engine();
        assert!(e.mac(&[Seconds(1e-9)], &[]).is_err());
        assert!(e.mac(&[], &[]).is_err());
        assert!(e.mac(&[Seconds(200e-9)], &[Siemens(1e-4)]).is_err());
        assert!(e.mac(&[Seconds(-1e-9)], &[Siemens(1e-4)]).is_err());
        assert!(e.mvm_matrix(&[1e-4; 4], 2, 2, &[Seconds(1e-9)]).is_err());
        assert!(e.mvm_matrix(&[1e-4; 3], 2, 2, &[Seconds(1e-9); 2]).is_err());
    }

    #[test]
    fn linear_gain_is_dt_over_ccog() {
        let e = engine();
        // t_out = 10 kΩ · (20 ns · 50 µS) = 10e3 · 1e-12 = 10 ns.
        let t = e.mac_linear(&[Seconds(20e-9)], &[Siemens(50e-6)]).unwrap();
        assert!((t.as_nanos() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_flag_set_when_ramp_cannot_reach() {
        // Force a huge V_out by using a tiny C_cog (strong charging) and
        // late arrivals -> V_out near V_s, crossing after slice end.
        let cfg = ResipeConfig::paper();
        let e = ResipeEngine::new(cfg);
        let mac = e.mac(&[Seconds(99e-9)], &[Siemens(3.2e-3)]).unwrap();
        // V(99 ns) = 1 − e^(−9.9) ≈ 0.99995; crossing needs t ≈ 99 ns,
        // still within slice — not saturated.
        assert!(!mac.saturated);
        // But a config with t_max == slice and input at the very end plus
        // full charge can clamp:
        let e2 = ResipeEngine::new(
            ResipeConfig::paper()
                .with_slice(Seconds(50e-9))
                .with_t_max(Seconds(50e-9)),
        );
        let mac2 = e2.mac(&[Seconds(50e-9)], &[Siemens(3.2e-3)]).unwrap();
        // The charging factor (1 − e^−32) ≈ 1, so V_out ≈ V_in and the
        // crossing is at ≈ 50 ns = slice end; allow either flag but the
        // clamp must hold.
        assert!(mac2.t_out.0 <= 50e-9 + 1e-15);
    }

    #[test]
    fn try_new_rejects_bad_config() {
        let bad = ResipeConfig::paper().with_dt(Seconds(1e-6));
        assert!(ResipeEngine::try_new(bad).is_err());
    }

    #[test]
    fn linear_ramp_model_changes_result() {
        let e_exact = engine();
        let e_linear = engine().with_ramp_model(RampModel::Linear);
        let t_in = [Seconds(50e-9), Seconds(70e-9)];
        let g = [Siemens(2e-4), Siemens(1e-4)];
        let exact = e_exact.mac(&t_in, &g).unwrap();
        let linear = e_linear.mac(&t_in, &g).unwrap();
        assert_ne!(exact.t_out, linear.t_out);
    }
}
