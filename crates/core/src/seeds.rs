//! Deterministic seed derivation for parallel-safe randomness.
//!
//! Every stochastic compile-time effect (process variation, fault maps,
//! repair programming noise, comparator offsets) draws from a
//! [`rand::rngs::StdRng`] seeded through this module instead of sharing
//! one sequential RNG stream. Each (layer, tile, purpose) gets its own
//! independent substream derived from the user-visible
//! [`crate::inference::CompileOptions::seed`], which makes the draw for
//! any given tile a pure function of the seed and the tile's identity —
//! not of the order tiles happen to be visited in. That is the property
//! that lets compiles run tiles in parallel (or be resumed, cached, and
//! compared across code versions) while staying bit-reproducible.

/// Derives the `index`-th independent substream of `base`.
///
/// Uses the splitmix64 finalizer over `base ^ φ·(index+1)` (with φ the
/// 64-bit golden-ratio constant), so substreams of nearby indices and
/// nearby bases are decorrelated. The mapping is injective in `index`
/// for a fixed `base`.
///
/// ```
/// use resipe::seeds::substream;
/// assert_ne!(substream(42, 0), substream(42, 1));
/// assert_ne!(substream(42, 0), substream(43, 0));
/// assert_eq!(substream(7, 3), substream(7, 3));
/// ```
pub fn substream(base: u64, index: u64) -> u64 {
    let mut z = base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1));
    // splitmix64 finalizer.
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substreams_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for index in 0..64 {
                assert!(seen.insert(substream(base, index)), "collision");
                assert_eq!(substream(base, index), substream(base, index));
            }
        }
    }

    #[test]
    fn substream_differs_from_base() {
        for base in [0u64, 7, 0xdead_beef] {
            assert_ne!(substream(base, 0), base);
        }
    }
}
