//! Error types for the ReSiPE engine.

use std::error::Error;
use std::fmt;

use resipe_analog::AnalogError;
use resipe_nn::NnError;
use resipe_reram::ReramError;

/// Errors produced by the ReSiPE engine and its mapping/inference layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResipeError {
    /// An engine configuration value was invalid.
    InvalidConfig {
        /// Description of the invalid field.
        reason: String,
    },
    /// A spike time lay outside the slice.
    SpikeOutOfSlice {
        /// The offending time in seconds.
        time: f64,
        /// The slice length in seconds.
        slice: f64,
    },
    /// Input vectors disagreed in length with the crossbar or each other.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// An error bubbled up from the analog substrate.
    Analog(AnalogError),
    /// An error bubbled up from the ReRAM substrate.
    Reram(ReramError),
    /// An error bubbled up from the neural-network substrate.
    Nn(NnError),
    /// A network contained a layer the hardware mapper does not support.
    UnsupportedLayer {
        /// Description of the layer.
        layer: String,
    },
    /// A [`crate::inference::CompileOptions`] combination was invalid
    /// (caught by validation before compilation starts).
    InvalidOptions {
        /// Description of the invalid combination.
        reason: String,
    },
}

impl fmt::Display for ResipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResipeError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            ResipeError::SpikeOutOfSlice { time, slice } => write!(
                f,
                "spike time {} ns outside slice of {} ns",
                time * 1e9,
                slice * 1e9
            ),
            ResipeError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            ResipeError::Analog(e) => write!(f, "analog substrate: {e}"),
            ResipeError::Reram(e) => write!(f, "reram substrate: {e}"),
            ResipeError::Nn(e) => write!(f, "nn substrate: {e}"),
            ResipeError::UnsupportedLayer { layer } => {
                write!(f, "unsupported layer for hardware mapping: {layer}")
            }
            ResipeError::InvalidOptions { reason } => {
                write!(f, "invalid compile options: {reason}")
            }
        }
    }
}

impl Error for ResipeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ResipeError::Analog(e) => Some(e),
            ResipeError::Reram(e) => Some(e),
            ResipeError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalogError> for ResipeError {
    fn from(e: AnalogError) -> ResipeError {
        ResipeError::Analog(e)
    }
}

impl From<ReramError> for ResipeError {
    fn from(e: ReramError) -> ResipeError {
        ResipeError::Reram(e)
    }
}

impl From<NnError> for ResipeError {
    fn from(e: NnError) -> ResipeError {
        ResipeError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ResipeError::SpikeOutOfSlice {
            time: 150e-9,
            slice: 100e-9,
        };
        assert!(e.to_string().contains("150 ns"));
        assert!(e.source().is_none());

        let e: ResipeError = AnalogError::SingularMatrix { step: 1 }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("analog"));

        let e: ResipeError = ReramError::InvalidFraction { value: 2.0 }.into();
        assert!(e.to_string().contains("reram"));

        let e: ResipeError = NnError::Diverged { epoch: 0 }.into();
        assert!(e.to_string().contains("nn"));

        let e = ResipeError::InvalidOptions {
            reason: "fault rate -0.1 outside [0, 1]".into(),
        };
        assert!(e.to_string().contains("invalid compile options"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ResipeError>();
    }
}
