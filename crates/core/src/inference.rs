//! Running trained networks on the simulated ReSiPE hardware.
//!
//! [`HardwareNetwork::compile`] lowers a trained [`resipe_nn::Network`]
//! onto the engine:
//!
//! * every `Dense` layer's `[in, out]` weight matrix and every `Conv2d`
//!   layer's `[fan_in, out_ch]` kernel matrix (via the same im2col
//!   lowering the software path uses) becomes a tiled differential
//!   crossbar pair ([`crate::mapping::MappedWeights`]);
//! * a calibration batch run through the *ideal* network fixes each
//!   weight layer's input scale, so activations can be normalized into
//!   the `\[0, 1\]` spike-encoding range;
//! * biases, ReLU, pooling and flatten run digitally, as they would in
//!   the engine's peripheral logic;
//! * an optional [`VariationModel`] perturbs every programmed cell —
//!   one Monte-Carlo instance per compile.
//!
//! This is the machinery behind the paper's Fig. 7 accuracy study.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use resipe_analog::units::Seconds;
use resipe_nn::data::Dataset;
use resipe_nn::layers::{im2col, Layer};
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;
use resipe_reram::aging::AgingStep;
use resipe_reram::faults::RetentionDrift;
use resipe_reram::variation::VariationModel;

use crate::batch::{BatchPlan, BatchScratch};
use crate::config::ResipeConfig;
use crate::engine::ResipeEngine;
use crate::error::ResipeError;
use crate::kernel::Backend;
use crate::mapping::{MappedWeights, SpikeEncoding, TileMapper};
use crate::repair::{repair_layer_with, HealthReport, RepairPolicy};
use crate::seeds;
use crate::telemetry::{Counter, Telemetry, TelemetrySnapshot};

/// How activations are spike-encoded at each hardware layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncodingPolicy {
    /// The physical pipeline: raw inputs enter in the paper's linear-time
    /// format (with its concave distortion), while inter-layer spikes are
    /// pass-through — their timing already sits on the ramp curve, so the
    /// held voltage is exact (the calibration cancellation of Sec. III-D).
    #[default]
    FirstLinearThenPassThrough,
    /// Every layer re-encodes linearly in time — an ablation exaggerating
    /// the non-linearity (as if each layer re-digitized its inputs).
    AllLinearTime,
    /// Every layer uses the exact pass-through encoding — isolates the
    /// process-variation contribution (no circuit non-linearity at all).
    AllPassThrough,
}

impl EncodingPolicy {
    fn encoding_for(self, weight_layer_index: usize) -> SpikeEncoding {
        match self {
            EncodingPolicy::FirstLinearThenPassThrough => {
                if weight_layer_index == 0 {
                    SpikeEncoding::LinearTime
                } else {
                    SpikeEncoding::PassThrough
                }
            }
            EncodingPolicy::AllLinearTime => SpikeEncoding::LinearTime,
            EncodingPolicy::AllPassThrough => SpikeEncoding::PassThrough,
        }
    }
}

/// Hard-fault injection applied at compile time — the persistent damage
/// of an aged or defective part, as opposed to the statistical PV draw of
/// [`VariationModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// Target fraction of stuck cells per array.
    pub rate: f64,
    /// Maximum cells per spatially-clustered defect.
    pub cluster_size: usize,
    /// Seed for the fault-map draw (independent of the PV seed).
    pub seed: u64,
    /// Optional retention drift applied after fault injection: the drift
    /// model and the storage time elapsed since programming.
    pub drift: Option<(RetentionDrift, Seconds)>,
}

impl FaultInjection {
    /// Clustered stuck-at faults at `rate`, no retention drift.
    pub fn clustered(rate: f64, cluster_size: usize, seed: u64) -> FaultInjection {
        FaultInjection {
            rate,
            cluster_size,
            seed,
            drift: None,
        }
    }

    /// Adds retention drift on top of the stuck-at faults.
    pub fn with_drift(mut self, drift: RetentionDrift, elapsed: Seconds) -> FaultInjection {
        self.drift = Some((drift, elapsed));
        self
    }
}

/// Options controlling hardware compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Engine circuit configuration.
    pub config: ResipeConfig,
    /// Weight-to-conductance lowering options.
    pub mapper: TileMapper,
    /// Process variation to apply to the programmed cells.
    pub variation: VariationModel,
    /// Monte-Carlo seed for the variation draw.
    pub seed: u64,
    /// Per-layer spike-encoding policy.
    pub encoding: EncodingPolicy,
    /// Standard deviation of the static per-column COG comparator input
    /// offsets (volts); 0 disables them.
    pub comparator_sigma: f64,
    /// Optional spike-time quantization grid (pulse-width resolution
    /// limit); `None` models ideal continuous timing.
    pub time_quantization: Option<resipe_analog::units::Seconds>,
    /// Optional hard-fault injection (stuck-at maps + retention drift).
    pub faults: Option<FaultInjection>,
    /// Optional online repair: BIST every tile after programming and run
    /// the repair ladder, surfacing a [`HealthReport`].
    pub repair: Option<RepairPolicy>,
}

impl CompileOptions {
    /// The paper's setup with no variation (isolates the circuit
    /// non-linearity — Fig. 7's σ = 0 bar).
    ///
    /// The encode window is reduced to `t_max` = 20 ns (from the raw
    /// engine's 80 ns characterization range): the ramp's slope near t = 0
    /// amplifies small inputs by `t_max/τ_gd`, so wide windows distort
    /// first-layer activations heavily. At 20 ns the measured σ = 0
    /// accuracy drop lands at the paper's "< 2.5 %" claim; the
    /// `fig7 --window-sweep` ablation regenerates the full trade-off.
    pub fn paper() -> CompileOptions {
        CompileOptions {
            config: ResipeConfig::paper().with_t_max(resipe_analog::units::Seconds(20e-9)),
            mapper: TileMapper::paper(),
            variation: VariationModel::IDEAL,
            seed: 0,
            encoding: EncodingPolicy::default(),
            comparator_sigma: 0.0,
            time_quantization: None,
            faults: None,
            repair: None,
        }
    }

    /// Injects hard faults at compile time.
    pub fn with_faults(mut self, faults: FaultInjection) -> CompileOptions {
        self.faults = Some(faults);
        self
    }

    /// Enables the online repair ladder.
    pub fn with_repair(mut self, policy: RepairPolicy) -> CompileOptions {
        self.repair = Some(policy);
        self
    }

    /// Sets the static COG comparator offset sigma (volts).
    pub fn with_comparator_sigma(mut self, sigma: f64) -> CompileOptions {
        self.comparator_sigma = sigma;
        self
    }

    /// Quantizes observed spike times to the given grid.
    pub fn with_time_quantization(
        mut self,
        quantum: resipe_analog::units::Seconds,
    ) -> CompileOptions {
        self.time_quantization = Some(quantum);
        self
    }

    /// Sets the per-layer spike-encoding policy.
    pub fn with_encoding(mut self, encoding: EncodingPolicy) -> CompileOptions {
        self.encoding = encoding;
        self
    }

    /// Sets the process-variation model.
    pub fn with_variation(mut self, variation: VariationModel) -> CompileOptions {
        self.variation = variation;
        self
    }

    /// Sets the Monte-Carlo seed.
    pub fn with_seed(mut self, seed: u64) -> CompileOptions {
        self.seed = seed;
        self
    }

    /// Sets the engine configuration.
    pub fn with_config(mut self, config: ResipeConfig) -> CompileOptions {
        self.config = config;
        self
    }

    /// Sets the tile mapper.
    pub fn with_mapper(mut self, mapper: TileMapper) -> CompileOptions {
        self.mapper = mapper;
        self
    }

    /// Checks the options for invalid combinations.
    ///
    /// [`HardwareNetwork::compile`] calls this first, so a bad request
    /// fails fast with a [`ResipeError::InvalidOptions`] naming the
    /// offending field instead of panicking deep inside the mapping
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidOptions`] when any field is out of
    /// range: a zero-row tile mapper, a fault rate outside `[0, 1]` or a
    /// zero cluster size, retention drift without positive elapsed time,
    /// a negative or non-finite comparator sigma, or a non-positive
    /// time-quantization grid. Engine-configuration problems surface as
    /// [`ResipeError::InvalidConfig`] via
    /// [`crate::config::ResipeConfig::validate`].
    pub fn validate(&self) -> Result<(), ResipeError> {
        let invalid = |reason: String| Err(ResipeError::InvalidOptions { reason });
        self.config.validate()?;
        if self.mapper.max_rows() == 0 {
            return invalid("tile mapper max_rows must be nonzero".into());
        }
        if let Some(f) = self.faults {
            if !f.rate.is_finite() || !(0.0..=1.0).contains(&f.rate) {
                return invalid(format!("fault rate {} outside [0, 1]", f.rate));
            }
            if f.cluster_size == 0 {
                return invalid("fault cluster size must be nonzero".into());
            }
            if let Some((_, elapsed)) = f.drift {
                if !(elapsed.0 > 0.0) {
                    return invalid(format!(
                        "retention drift requires positive elapsed time, got {} s",
                        elapsed.0
                    ));
                }
            }
        }
        if !self.comparator_sigma.is_finite() || self.comparator_sigma < 0.0 {
            return invalid(format!(
                "comparator sigma {} must be finite and non-negative",
                self.comparator_sigma
            ));
        }
        if let Some(q) = self.time_quantization {
            if !(q.0 > 0.0) {
                return invalid(format!("time quantization {} s must be positive", q.0));
            }
        }
        Ok(())
    }

    /// Validates and returns the options — the builder-style terminal,
    /// for pipelines that want an explicit checked value:
    /// `CompileOptions::paper().with_seed(3).build()?`.
    ///
    /// # Errors
    ///
    /// See [`CompileOptions::validate`].
    pub fn build(self) -> Result<CompileOptions, ResipeError> {
        self.validate()?;
        Ok(self)
    }
}

/// Lowers one mapped weight layer through the full non-ideality chain:
/// process variation → hard faults → retention drift → repair ladder →
/// readout non-idealities. Repair outcomes are appended to `health`.
///
/// `layer_seed` is this layer's substream of the compile seed; each
/// stochastic stage draws from its own fixed substream of it, so every
/// draw is a pure function of `(compile seed, layer, stage, tile)` and
/// never of the order layers or tiles are visited in.
fn lower_mapped(
    engine: &ResipeEngine,
    mapped: MappedWeights,
    options: &CompileOptions,
    weight_layer_index: usize,
    layer_seed: u64,
    health: &mut HealthReport,
    telemetry: &Telemetry,
) -> Result<MappedWeights, ResipeError> {
    let mut mapped = {
        let _program = telemetry.span_with(|| format!("compile/layer{weight_layer_index}/program"));
        let mut mapped = mapped.perturbed(&options.variation, seeds::substream(layer_seed, 0));
        if let Some(fi) = options.faults {
            let seed = fi
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(weight_layer_index as u64 + 1));
            mapped = mapped.with_faults(fi.rate, fi.cluster_size, seed)?;
            if let Some((drift, elapsed)) = fi.drift {
                mapped = mapped.with_retention_drift(&drift, elapsed)?;
            }
        }
        mapped
    };
    if let Some(policy) = options.repair {
        let tiles = repair_layer_with(
            engine,
            &mut mapped,
            weight_layer_index,
            &policy,
            seeds::substream(layer_seed, 1),
            telemetry,
        )?;
        health.tiles.extend(tiles);
    }
    if options.comparator_sigma > 0.0 {
        mapped = mapped
            .with_comparator_offsets(options.comparator_sigma, seeds::substream(layer_seed, 2));
    }
    if let Some(q) = options.time_quantization {
        mapped = mapped.with_time_quantization(q);
    }
    Ok(mapped)
}

/// A layer lowered onto the hardware (or executed digitally).
///
/// Crossbar layers do not own their conductance state: they reference
/// it by weight-layer index into the currently-published
/// [`NetworkEpoch`], so a repair or aging event can swap in fresh
/// crossbar state without touching the layer graph.
#[derive(Debug, Clone)]
enum HwLayer {
    /// A dense layer on crossbars (`weights` indexes the epoch).
    Dense {
        weights: usize,
        bias: Vec<f64>,
        input_scale: f64,
    },
    /// A convolution on crossbars via im2col (`weights` indexes the
    /// epoch).
    Conv {
        weights: usize,
        bias: Vec<f64>,
        input_scale: f64,
        kernel: usize,
        padding: usize,
        out_channels: usize,
    },
    /// Digital ReLU (free in the spike domain — a negative differential
    /// simply never fires).
    Relu,
    /// Digital max pooling.
    MaxPool(usize),
    /// Digital average pooling.
    AvgPool(usize),
    /// Digital flatten.
    Flatten,
}

/// One weight layer's crossbar state within a published [`NetworkEpoch`]:
/// the mapped conductances, the layer's spike encoding, and the lazily
/// built [`BatchPlan`] derived from them. Immutable once published —
/// repair and aging build a *new* `LayerState` and publish it inside a
/// new epoch rather than mutating this one, which is what lets in-flight
/// requests keep executing the state they loaded.
#[derive(Debug)]
pub(crate) struct LayerState {
    pub(crate) mapped: MappedWeights,
    encoding: SpikeEncoding,
    plan: OnceLock<Arc<BatchPlan>>,
}

impl LayerState {
    pub(crate) fn new(mapped: MappedWeights, encoding: SpikeEncoding) -> LayerState {
        LayerState {
            mapped,
            encoding,
            plan: OnceLock::new(),
        }
    }

    /// The spike encoding activations enter this layer with.
    pub(crate) fn encoding(&self) -> SpikeEncoding {
        self.encoding
    }

    /// The cached [`BatchPlan`], built on first planned use of this
    /// state. Plans are pure functions of `(mapped, engine, encoding)`,
    /// so lazy build-once semantics change no bits.
    fn plan(&self, engine: &ResipeEngine) -> Arc<BatchPlan> {
        Arc::clone(
            self.plan
                .get_or_init(|| Arc::new(BatchPlan::new(engine, &self.mapped, self.encoding))),
        )
    }
}

/// An immutable snapshot of every crossbar layer's state, published
/// atomically. A request loads the epoch once at entry and executes all
/// layers against that snapshot, so no request can ever observe a torn
/// mix of pre- and post-repair layers — even when one repair pass
/// touches several layers.
#[derive(Debug)]
pub(crate) struct NetworkEpoch {
    /// Monotone version number (0 at compile, +1 per publish).
    pub(crate) epoch: u64,
    /// One state per weight-bearing layer, in weight-layer order.
    pub(crate) layers: Vec<Arc<LayerState>>,
}

/// An ArcSwap-style epoch-versioned cell on `std::sync` primitives: the
/// write lock is held only for the pointer replacement (readers clone
/// the `Arc` under the read lock and drop it immediately), so swaps
/// never stall in-flight inference and readers never block each other.
#[derive(Debug)]
struct EpochCell {
    current: RwLock<Arc<NetworkEpoch>>,
    swaps: AtomicU64,
}

impl EpochCell {
    fn new(epoch: Arc<NetworkEpoch>) -> EpochCell {
        EpochCell {
            current: RwLock::new(epoch),
            swaps: AtomicU64::new(0),
        }
    }

    /// The currently-published epoch. In-flight holders of a previous
    /// epoch keep it alive through their `Arc` until they finish.
    fn load(&self) -> Arc<NetworkEpoch> {
        Arc::clone(&self.current.read().expect("epoch cell poisoned"))
    }

    /// Publishes `layers` as the next epoch and returns its number.
    fn swap(&self, layers: Vec<Arc<LayerState>>) -> u64 {
        let mut guard = self.current.write().expect("epoch cell poisoned");
        let next = guard.epoch + 1;
        *guard = Arc::new(NetworkEpoch {
            epoch: next,
            layers,
        });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        next
    }

    /// Publishes a next epoch that replaces only the listed weight
    /// layers, carrying every other layer over from the epoch current
    /// *at publish time*. The read-modify-write runs under the write
    /// lock, so a concurrent full swap is never silently clobbered on
    /// layers this update does not touch.
    fn swap_layers(&self, updates: Vec<(usize, Arc<LayerState>)>) -> u64 {
        let mut guard = self.current.write().expect("epoch cell poisoned");
        let mut layers = guard.layers.clone();
        for (index, state) in updates {
            layers[index] = state;
        }
        let next = guard.epoch + 1;
        *guard = Arc::new(NetworkEpoch {
            epoch: next,
            layers,
        });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        next
    }

    fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// How [`HardwareNetwork::run`] executes the hardware layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// The amortized [`BatchPlan`] path: sample-independent constants are
    /// hoisted once per layer and samples fan out across the rayon pool.
    /// Bit-identical to [`ExecutionMode::PerSample`] by construction.
    #[default]
    Planned,
    /// The reference path: every sample replays the full per-MVM
    /// operation sequence through [`MappedWeights::forward`].
    PerSample,
}

/// Options for [`HardwareNetwork::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RunOptions {
    /// Execution strategy (default [`ExecutionMode::Planned`]).
    pub mode: ExecutionMode,
    /// Sample-block size of the planned path's cache-blocked kernel.
    /// `None` (the default) derives it per layer from the tile cache
    /// footprint ([`BatchPlan::preferred_block`]) and the pool width.
    /// Block size never changes output bits — only how samples are
    /// grouped per tile pass.
    pub block: Option<usize>,
    /// Kernel backend executing the planned path's crossbar weighted
    /// sums (default [`Backend::Scalar`]; see [`crate::kernel`] for the
    /// per-backend exactness guarantees). Ignored by
    /// [`ExecutionMode::PerSample`], which *is* the scalar reference by
    /// definition.
    pub backend: Backend,
}

impl RunOptions {
    /// The default amortized-plan execution.
    pub fn planned() -> RunOptions {
        RunOptions {
            mode: ExecutionMode::Planned,
            block: None,
            backend: Backend::Scalar,
        }
    }

    /// The per-sample reference execution.
    pub fn per_sample() -> RunOptions {
        RunOptions {
            mode: ExecutionMode::PerSample,
            block: None,
            backend: Backend::Scalar,
        }
    }

    /// Sets the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> RunOptions {
        self.mode = mode;
        self
    }

    /// Pins the planned path's sample-block size (clamped to ≥ 1).
    pub fn with_block_size(mut self, block: usize) -> RunOptions {
        self.block = Some(block.max(1));
        self
    }

    /// Selects the kernel backend of the planned path.
    pub fn with_backend(mut self, backend: Backend) -> RunOptions {
        self.backend = backend;
        self
    }
}

/// Outputs of one [`HardwareNetwork::run`] call, together with the
/// telemetry accumulated so far on the network's handle.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The network outputs (same value as the legacy `forward` APIs).
    pub outputs: Tensor,
    /// Snapshot of the network's [`Telemetry`] sink taken after the run
    /// (the empty default snapshot when telemetry is disabled).
    pub telemetry: TelemetrySnapshot,
}

/// A trained network compiled onto the simulated ReSiPE hardware.
#[derive(Debug)]
pub struct HardwareNetwork {
    engine: ResipeEngine,
    layers: Vec<HwLayer>,
    name: String,
    /// Physical crossbar MVMs issued since construction (or the last
    /// [`HardwareNetwork::reset_mvm_count`]) — the basis of measured
    /// energy reports. Atomic so parallel batched forwards count
    /// correctly.
    mvm_count: AtomicU64,
    /// Per-tile health collected by the repair ladder at compile time
    /// (empty when no repair policy was set).
    health: HealthReport,
    /// Recorder every compile and run reports into. Disabled (a no-op
    /// handle) unless set via [`HardwareNetwork::compile_with_telemetry`]
    /// or [`HardwareNetwork::set_telemetry`].
    telemetry: Telemetry,
    /// The epoch-versioned crossbar state every request executes
    /// against. Repair and aging publish new epochs here via an atomic
    /// swap; requests load the cell once at entry (see
    /// [`NetworkEpoch`]).
    weights: EpochCell,
    /// Recycled kernel scratch buffers — workers take one per chunk and
    /// return it, so steady-state inference allocates only its outputs.
    scratch_pool: Mutex<Vec<BatchScratch>>,
}

impl Clone for HardwareNetwork {
    fn clone(&self) -> HardwareNetwork {
        HardwareNetwork {
            engine: self.engine,
            layers: self.layers.clone(),
            name: self.name.clone(),
            // The MVM counter is a measurement artifact of *this*
            // instance, not part of the compiled network — clones start
            // counting from zero.
            mvm_count: AtomicU64::new(0),
            health: self.health.clone(),
            // The telemetry handle is a reference to an *external*
            // recorder, not per-instance state — clones keep reporting
            // into the same sink.
            telemetry: self.telemetry.clone(),
            // A clone snapshots the epoch published *now* into its own
            // cell: later swaps on the original never reach the clone
            // (and vice versa), which is exactly what a frozen reference
            // copy needs. The immutable `LayerState`s (and their built
            // plans) are shared by `Arc`.
            weights: EpochCell::new(self.weights.load()),
            scratch_pool: Mutex::new(Vec::new()),
        }
    }
}

impl HardwareNetwork {
    /// Compiles a trained network.
    ///
    /// `calibration` is a representative input batch (e.g. a slice of the
    /// training set) used to fix per-layer activation scales via the
    /// ideal network.
    ///
    /// # Examples
    ///
    /// The full train → compile → evaluate flow on the synthetic digit
    /// task (the `quickstart` binary in miniature):
    ///
    /// ```
    /// use resipe::prelude::*;
    /// use resipe_nn::data::synth_digits;
    /// use resipe_nn::models;
    /// use resipe_nn::train::{Sgd, TrainConfig};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Train a small MLP in software.
    /// let train = synth_digits(200, 1)?;
    /// let test = synth_digits(60, 2)?;
    /// let mut net = models::mlp1(7)?;
    /// Sgd::new(TrainConfig::new(4).with_learning_rate(0.1)).fit(&mut net, &train)?;
    ///
    /// // Compile it onto the simulated ReSiPE hardware, calibrating the
    /// // spike-encoding range on a slice of the training set.
    /// let (calibration, _) = train.batch(&(0..32).collect::<Vec<_>>())?;
    /// let hw = HardwareNetwork::compile(&net, &calibration, &CompileOptions::paper())?;
    ///
    /// // Evaluate on the engine's exact circuit physics.
    /// let accuracy = hw.accuracy(&test)?;
    /// assert!(accuracy > 0.5, "hardware accuracy {accuracy}");
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidOptions`] when
    /// [`CompileOptions::validate`] rejects the request,
    /// [`ResipeError::UnsupportedLayer`] for layer kinds the mapper
    /// cannot lower, or propagated substrate errors.
    pub fn compile(
        net: &Network,
        calibration: &Tensor,
        options: &CompileOptions,
    ) -> Result<HardwareNetwork, ResipeError> {
        HardwareNetwork::compile_with_telemetry(net, calibration, options, Telemetry::disabled())
    }

    /// [`HardwareNetwork::compile`] with a telemetry recorder: the
    /// compile records `compile → layer → tile → (program/repair)`
    /// spans and repair counters into `telemetry`, and the returned
    /// network keeps the handle, so subsequent runs report into the
    /// same sink. Telemetry never changes a compiled bit — recording is
    /// observation only (see [`crate::telemetry`]).
    ///
    /// # Errors
    ///
    /// See [`HardwareNetwork::compile`].
    pub fn compile_with_telemetry(
        net: &Network,
        calibration: &Tensor,
        options: &CompileOptions,
        telemetry: Telemetry,
    ) -> Result<HardwareNetwork, ResipeError> {
        options.validate()?;
        let _compile_span = telemetry.span("compile");
        let engine = ResipeEngine::try_new(options.config)?;
        // Every weight layer gets its own substream of the compile seed;
        // within a layer, every stage and tile substream again. No
        // stochastic draw depends on visit order.
        let base_seed = options.seed ^ 0x4e5e_11a7_0000_0001;

        // Pass the calibration batch through an ideal copy, recording the
        // max-abs input to each weight layer.
        let mut ideal = net.clone();
        let mut scales = Vec::new();
        {
            let mut x = calibration.clone();
            for layer in ideal.layers_mut() {
                if layer.has_weights() {
                    scales.push(f64::from(x.max_abs()).max(f64::MIN_POSITIVE));
                }
                x = layer.forward(&x)?;
            }
        }

        let mut layers = Vec::with_capacity(net.len());
        let mut weight_states: Vec<Arc<LayerState>> = Vec::new();
        let mut scale_iter = scales.into_iter();
        let mut weight_layer_index = 0usize;
        let mut health = HealthReport::default();
        for layer in net.layers() {
            let hw = match layer {
                Layer::Dense(d) => {
                    let _layer_span =
                        telemetry.span_with(|| format!("compile/layer{weight_layer_index}"));
                    let w = d.weights();
                    let (rows, cols) = (w.shape()[0], w.shape()[1]);
                    let weights: Vec<f64> = w.data().iter().map(|&v| v as f64).collect();
                    let mapped = options.mapper.map(&weights, rows, cols)?;
                    let mapped = lower_mapped(
                        &engine,
                        mapped,
                        options,
                        weight_layer_index,
                        seeds::substream(base_seed, weight_layer_index as u64),
                        &mut health,
                        &telemetry,
                    )?;
                    let encoding = options.encoding.encoding_for(weight_layer_index);
                    weight_layer_index += 1;
                    weight_states.push(Arc::new(LayerState::new(mapped, encoding)));
                    HwLayer::Dense {
                        weights: weight_states.len() - 1,
                        bias: d.bias().data().iter().map(|&v| v as f64).collect(),
                        input_scale: scale_iter.next().expect("one scale per weight layer"),
                    }
                }
                Layer::Conv2d(c) => {
                    let _layer_span =
                        telemetry.span_with(|| format!("compile/layer{weight_layer_index}"));
                    // Kernel matrix is [out_ch, fan_in]; the crossbar wants
                    // inputs on rows -> transpose to [fan_in, out_ch].
                    let w = c.weights();
                    let (out_ch, fan_in) = (w.shape()[0], w.shape()[1]);
                    let mut weights = vec![0.0f64; fan_in * out_ch];
                    for oc in 0..out_ch {
                        for k in 0..fan_in {
                            weights[k * out_ch + oc] = w.get(&[oc, k]) as f64;
                        }
                    }
                    let mapped = options.mapper.map(&weights, fan_in, out_ch)?;
                    let mapped = lower_mapped(
                        &engine,
                        mapped,
                        options,
                        weight_layer_index,
                        seeds::substream(base_seed, weight_layer_index as u64),
                        &mut health,
                        &telemetry,
                    )?;
                    let encoding = options.encoding.encoding_for(weight_layer_index);
                    weight_layer_index += 1;
                    weight_states.push(Arc::new(LayerState::new(mapped, encoding)));
                    HwLayer::Conv {
                        weights: weight_states.len() - 1,
                        bias: c.bias().data().iter().map(|&v| v as f64).collect(),
                        input_scale: scale_iter.next().expect("one scale per weight layer"),
                        kernel: c.kernel_size(),
                        padding: c.padding(),
                        out_channels: c.out_channels(),
                    }
                }
                Layer::Relu(_) => HwLayer::Relu,
                Layer::MaxPool2d(p) => HwLayer::MaxPool(p.size()),
                Layer::AvgPool2d(p) => HwLayer::AvgPool(p.size()),
                Layer::Flatten(_) => HwLayer::Flatten,
            };
            layers.push(hw);
        }
        drop(_compile_span);
        Ok(HardwareNetwork {
            engine,
            layers,
            name: net.name().to_owned(),
            mvm_count: AtomicU64::new(0),
            health,
            telemetry,
            weights: EpochCell::new(Arc::new(NetworkEpoch {
                epoch: 0,
                layers: weight_states,
            })),
            scratch_pool: Mutex::new(Vec::new()),
        })
    }

    /// The telemetry handle this network reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replaces the telemetry handle (e.g. to start recording on a
    /// network compiled without one). Recording never changes outputs.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The compiled network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-tile health collected by the repair ladder at compile time.
    /// Empty unless [`CompileOptions::with_repair`] was set.
    pub fn health_report(&self) -> &HealthReport {
        &self.health
    }

    /// Classification accuracy together with the tile health report —
    /// the graceful-degradation interface: a damaged part still answers,
    /// and the caller can see how damaged it is.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn accuracy_with_health(
        &self,
        data: &Dataset,
    ) -> Result<(f32, &HealthReport), ResipeError> {
        Ok((self.accuracy(data)?, &self.health))
    }

    /// Total physical crossbar MVMs issued per single-sample forward pass
    /// through the dense layers (convolutions add one per output pixel per
    /// tile pair).
    pub fn dense_mvms_per_sample(&self) -> usize {
        let epoch = self.weights.load();
        self.layers
            .iter()
            .map(|l| match l {
                HwLayer::Dense { weights, .. } => epoch.layers[*weights].mapped.mvms_per_forward(),
                _ => 0,
            })
            .sum()
    }

    /// Number of weight-bearing layers mapped onto crossbars.
    pub fn crossbar_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, HwLayer::Dense { .. } | HwLayer::Conv { .. }))
            .count()
    }

    /// The unified inference entry point: one forward pass of `input`
    /// under `options`, returning the outputs together with a telemetry
    /// snapshot.
    ///
    /// Both execution modes produce **bit-identical** outputs — the
    /// amortized [`ExecutionMode::Planned`] path replays the exact
    /// per-sample floating-point operation sequence (see
    /// [`crate::batch`]) — and enabling telemetry never changes a bit
    /// either, so `run` subsumes the legacy [`HardwareNetwork::forward`]
    /// / [`HardwareNetwork::forward_batch`] pair (both now delegate
    /// here).
    ///
    /// When telemetry is enabled the run records the
    /// `forward → layer → {s1_encode, crossbar, s2_decode}` span
    /// hierarchy; stage-level timing, histograms and skip/reject
    /// counters come from the planned path (the per-sample reference
    /// path records layer spans and MVM counts only).
    ///
    /// # Errors
    ///
    /// Returns shape errors for incompatible inputs.
    pub fn run(&self, input: &Tensor, options: &RunOptions) -> Result<RunResult, ResipeError> {
        // Load the published epoch exactly once: every layer of this
        // request executes against the same immutable snapshot, so a
        // concurrent repair swap can never hand a request a torn mix of
        // pre- and post-repair crossbars.
        let epoch = self.weights.load();
        let outputs = {
            let _forward_span = self.telemetry.span("forward");
            let mut x = input.clone();
            for (li, layer) in self.layers.iter().enumerate() {
                let _layer_span = self.telemetry.span_with(|| format!("forward/layer{li}"));
                x = match options.mode {
                    ExecutionMode::PerSample => self.forward_layer(&epoch, li, layer, &x)?,
                    ExecutionMode::Planned => {
                        self.forward_layer_batched(&epoch, li, layer, &x, options)?
                    }
                };
            }
            x
        };
        Ok(RunResult {
            outputs,
            telemetry: self.telemetry.snapshot(),
        })
    }

    /// Forward pass of a batch through the hardware, one sample at a
    /// time — a thin wrapper over [`HardwareNetwork::run`] in
    /// [`ExecutionMode::PerSample`].
    ///
    /// # Errors
    ///
    /// Returns shape errors for incompatible inputs.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, ResipeError> {
        Ok(self.run(input, &RunOptions::per_sample())?.outputs)
    }

    /// Data-parallel batched forward pass — a thin wrapper over
    /// [`HardwareNetwork::run`] in [`ExecutionMode::Planned`].
    ///
    /// Produces **bit-identical** outputs to [`HardwareNetwork::forward`]
    /// for any thread count: the per-sample floating-point operation
    /// sequence is preserved exactly; the batch only amortizes the
    /// sample-independent per-column work (crossbar column sums, charge
    /// factors and decode constants are computed once per layer instead
    /// of once per sample) and fans independent samples out across the
    /// rayon pool. The MVM counter advances by the same total as the
    /// per-sample path.
    ///
    /// # Errors
    ///
    /// Returns shape errors for incompatible inputs.
    pub fn forward_batch(&self, input: &Tensor) -> Result<Tensor, ResipeError> {
        Ok(self.run(input, &RunOptions::planned())?.outputs)
    }

    /// The currently-published epoch number: 0 at compile, +1 for every
    /// repair or aging publish since.
    pub fn epoch(&self) -> u64 {
        self.weights.load().epoch
    }

    /// How many epoch swaps (plan republishes) this instance has
    /// performed — the hot-repair counter surfaced by serving stats.
    pub fn plan_swaps(&self) -> u64 {
        self.weights.swaps()
    }

    /// The currently-published epoch snapshot (for the scrubber, which
    /// BISTs and clones layer states off the hot path).
    pub(crate) fn current_epoch(&self) -> Arc<NetworkEpoch> {
        self.weights.load()
    }

    /// Atomically publishes `layers` as the next epoch. In-flight
    /// requests finish on the epoch they loaded; new requests see the
    /// published one. Returns the new epoch number.
    pub(crate) fn publish_epoch(&self, layers: Vec<Arc<LayerState>>) -> u64 {
        let next = self.weights.swap(layers);
        self.telemetry.add(Counter::PlanSwaps, 1);
        next
    }

    /// Atomically publishes a next epoch replacing only the listed
    /// weight layers (the scrubber's interface: untouched layers keep
    /// their `LayerState` Arcs and built plans). Returns the new epoch
    /// number.
    pub(crate) fn publish_layer_updates(&self, updates: Vec<(usize, Arc<LayerState>)>) -> u64 {
        let next = self.weights.swap_layers(updates);
        self.telemetry.add(Counter::PlanSwaps, 1);
        next
    }

    /// The engine this network was compiled for (scrubber BIST runs
    /// against the same circuit configuration the compile used).
    pub(crate) fn engine(&self) -> &ResipeEngine {
        &self.engine
    }

    /// Applies one [`AgingStep`] of live-traffic wear to every crossbar
    /// layer and publishes the aged state as a new epoch.
    ///
    /// Each weight layer ages under its own substream of the step
    /// (`step.substream(layer)`), so identically-shaped layers do not
    /// wear identical cells. The aged `LayerState`s are built off the
    /// hot path and swapped in atomically — in-flight requests are
    /// never exposed to a half-aged network.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (shape mismatches cannot occur for
    /// states cloned from the published epoch, but the drift model can
    /// reject invalid elapsed times).
    pub fn age(&self, step: &AgingStep) -> Result<(), ResipeError> {
        let epoch = self.weights.load();
        let mut aged = Vec::with_capacity(epoch.layers.len());
        for (li, state) in epoch.layers.iter().enumerate() {
            let sub = step.substream(li as u64);
            let mut mapped = state.mapped.clone();
            mapped.age(&sub)?;
            aged.push(Arc::new(LayerState::new(mapped, state.encoding())));
        }
        self.publish_epoch(aged);
        Ok(())
    }

    /// Borrows a recycled kernel scratch buffer (or a fresh one).
    fn take_scratch(&self) -> BatchScratch {
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool for the next chunk.
    fn put_scratch(&self, scratch: BatchScratch) {
        let mut pool = self.scratch_pool.lock().expect("scratch pool poisoned");
        if pool.len() < 64 {
            pool.push(scratch);
        }
    }

    fn forward_layer_batched(
        &self,
        epoch: &NetworkEpoch,
        li: usize,
        layer: &HwLayer,
        x: &Tensor,
        options: &RunOptions,
    ) -> Result<Tensor, ResipeError> {
        use rayon::prelude::*;
        match layer {
            HwLayer::Dense {
                weights,
                bias,
                input_scale,
            } => {
                let state = &epoch.layers[*weights];
                let mapped = &state.mapped;
                let s = x.shape();
                if s.len() != 2 || s[1] != mapped.rows() {
                    return Err(ResipeError::DimensionMismatch {
                        expected: mapped.rows(),
                        got: s.last().copied().unwrap_or(0),
                    });
                }
                let n = s[0];
                let plan = state.plan(&self.engine);
                let probe = self.layer_probe(li);
                // Samples are independent; fan whole sample blocks out
                // over the pool. The block is the parallel grain *and*
                // the kernel's cache-residency unit: auto-sizing caps it
                // at the layer's cache-derived preference but never
                // leaves workers idle on small batches. Each worker
                // borrows pooled scratch, so steady state allocates only
                // the chunk outputs.
                let rows = mapped.rows();
                let cols = mapped.cols();
                let threads = rayon::current_num_threads().max(1);
                let block = options
                    .block
                    .unwrap_or_else(|| plan.preferred_block().min(n.div_ceil(threads)))
                    .max(1);
                let starts: Vec<usize> = (0..n).step_by(block).collect();
                let chunks: Vec<Result<Vec<f64>, ResipeError>> = starts
                    .par_iter()
                    .map(|&start| {
                        let b = block.min(n - start);
                        let mut scratch = self.take_scratch();
                        let mut a_block = std::mem::take(&mut scratch.a_block);
                        a_block.clear();
                        a_block.reserve(b * rows);
                        for i in start..start + b {
                            a_block.extend(
                                x.row(i)
                                    .iter()
                                    .map(|&v| (v as f64 / input_scale).clamp(0.0, 1.0)),
                            );
                        }
                        let mut ys = vec![0.0f64; b * cols];
                        let r = plan.forward_block_probed_with(
                            options.backend,
                            &a_block,
                            b,
                            &mut ys,
                            &mut scratch,
                            probe.as_ref(),
                        );
                        scratch.a_block = a_block;
                        self.put_scratch(scratch);
                        r.map(|()| ys)
                    })
                    .collect();
                self.mvm_count
                    .fetch_add((n * mapped.mvms_per_forward()) as u64, Ordering::Relaxed);
                let mut out = Tensor::zeros(&[n, cols]);
                let mut i = 0usize;
                for chunk in chunks {
                    for y in chunk?.chunks_exact(cols) {
                        for (j, &yj) in y.iter().enumerate() {
                            out.set(&[i, j], (yj * input_scale + bias[j]) as f32);
                        }
                        i += 1;
                    }
                }
                Ok(out)
            }
            HwLayer::Conv {
                weights,
                bias,
                input_scale,
                kernel,
                padding,
                out_channels,
            } => {
                let state = &epoch.layers[*weights];
                let mapped = &state.mapped;
                let s = x.shape();
                if s.len() != 4 {
                    return Err(ResipeError::DimensionMismatch {
                        expected: 4,
                        got: s.len(),
                    });
                }
                let (n, h, w) = (s[0], s[2], s[3]);
                let h_out = h + 2 * padding + 1 - kernel;
                let w_out = w + 2 * padding + 1 - kernel;
                let n_pix = h_out * w_out;
                let plan = state.plan(&self.engine);
                let probe = self.layer_probe(li);
                let n_cols = mapped.cols();
                // Samples already fan out over the pool; within one
                // sample the output pixels run through the blocked
                // kernel, so the conv tile data is streamed once per
                // pixel block instead of once per pixel.
                let block = options
                    .block
                    .unwrap_or_else(|| plan.preferred_block())
                    .max(1);
                let per_sample: Vec<Result<Vec<f64>, ResipeError>> = (0..n)
                    .into_par_iter()
                    .map(|b| {
                        let cols = im2col(x, b, *kernel, *padding)?;
                        let fan_in = cols.shape()[0];
                        let mut scratch = self.take_scratch();
                        let mut a_block = std::mem::take(&mut scratch.a_block);
                        let mut pix_out = vec![0.0f64; n_pix * n_cols];
                        let mut result = Ok(());
                        for start in (0..n_pix).step_by(block) {
                            let bl = block.min(n_pix - start);
                            a_block.clear();
                            a_block.reserve(bl * fan_in);
                            for pix in start..start + bl {
                                a_block.extend((0..fan_in).map(|r| {
                                    (cols.get(&[r, pix]) as f64 / input_scale).clamp(0.0, 1.0)
                                }));
                            }
                            if let Err(e) = plan.forward_block_probed_with(
                                options.backend,
                                &a_block,
                                bl,
                                &mut pix_out[start * n_cols..(start + bl) * n_cols],
                                &mut scratch,
                                probe.as_ref(),
                            ) {
                                result = Err(e);
                                break;
                            }
                        }
                        scratch.a_block = a_block;
                        self.put_scratch(scratch);
                        result.map(|()| pix_out)
                    })
                    .collect();
                self.mvm_count.fetch_add(
                    (n * n_pix * mapped.mvms_per_forward()) as u64,
                    Ordering::Relaxed,
                );
                let mut out = Tensor::zeros(&[n, *out_channels, h_out, w_out]);
                for (b, sample) in per_sample.into_iter().enumerate() {
                    for (pix, y) in sample?.chunks_exact(n_cols).enumerate() {
                        let (oi, oj) = (pix / w_out, pix % w_out);
                        for (oc, &yc) in y.iter().enumerate() {
                            out.set(&[b, oc, oi, oj], (yc * input_scale + bias[oc]) as f32);
                        }
                    }
                }
                Ok(out)
            }
            digital => self.forward_layer(epoch, li, digital, x),
        }
    }

    /// A telemetry probe for network layer `li`, normalizing histograms
    /// by this engine's slice and supply voltage. `None` when disabled.
    fn layer_probe(&self, li: usize) -> Option<crate::telemetry::LayerProbe> {
        let cfg = self.engine.config();
        self.telemetry.layer_probe(li, cfg.slice().0, cfg.vs().0)
    }

    fn forward_layer(
        &self,
        epoch: &NetworkEpoch,
        li: usize,
        layer: &HwLayer,
        x: &Tensor,
    ) -> Result<Tensor, ResipeError> {
        match layer {
            HwLayer::Dense {
                weights,
                bias,
                input_scale,
            } => {
                let state = &epoch.layers[*weights];
                let mapped = &state.mapped;
                let encoding = state.encoding();
                let s = x.shape();
                if s.len() != 2 || s[1] != mapped.rows() {
                    return Err(ResipeError::DimensionMismatch {
                        expected: mapped.rows(),
                        got: s.last().copied().unwrap_or(0),
                    });
                }
                let n = s[0];
                let probe = self.layer_probe(li);
                let mut out = Tensor::zeros(&[n, mapped.cols()]);
                for i in 0..n {
                    let a: Vec<f64> = x
                        .row(i)
                        .iter()
                        .map(|&v| (v as f64 / input_scale).clamp(0.0, 1.0))
                        .collect();
                    let y = mapped.forward(&self.engine, &a, encoding)?;
                    self.mvm_count
                        .fetch_add(mapped.mvms_per_forward() as u64, Ordering::Relaxed);
                    if let Some(p) = &probe {
                        p.record_mvms(mapped.mvms_per_forward() as u64);
                    }
                    for (j, &yj) in y.iter().enumerate() {
                        out.set(&[i, j], (yj * input_scale + bias[j]) as f32);
                    }
                }
                Ok(out)
            }
            HwLayer::Conv {
                weights,
                bias,
                input_scale,
                kernel,
                padding,
                out_channels,
            } => {
                let state = &epoch.layers[*weights];
                let mapped = &state.mapped;
                let encoding = state.encoding();
                let s = x.shape();
                if s.len() != 4 {
                    return Err(ResipeError::DimensionMismatch {
                        expected: 4,
                        got: s.len(),
                    });
                }
                let (n, h, w) = (s[0], s[2], s[3]);
                let h_out = h + 2 * padding + 1 - kernel;
                let w_out = w + 2 * padding + 1 - kernel;
                let probe = self.layer_probe(li);
                let mut out = Tensor::zeros(&[n, *out_channels, h_out, w_out]);
                for b in 0..n {
                    let cols = im2col(x, b, *kernel, *padding)?;
                    let fan_in = cols.shape()[0];
                    for pix in 0..h_out * w_out {
                        let a: Vec<f64> = (0..fan_in)
                            .map(|r| (cols.get(&[r, pix]) as f64 / input_scale).clamp(0.0, 1.0))
                            .collect();
                        let y = mapped.forward(&self.engine, &a, encoding)?;
                        self.mvm_count
                            .fetch_add(mapped.mvms_per_forward() as u64, Ordering::Relaxed);
                        if let Some(p) = &probe {
                            p.record_mvms(mapped.mvms_per_forward() as u64);
                        }
                        let (oi, oj) = (pix / w_out, pix % w_out);
                        for (oc, &yc) in y.iter().enumerate() {
                            out.set(&[b, oc, oi, oj], (yc * input_scale + bias[oc]) as f32);
                        }
                    }
                }
                Ok(out)
            }
            HwLayer::Relu => Ok(x.map(|v| v.max(0.0))),
            HwLayer::MaxPool(size) => {
                let mut pool = resipe_nn::layers::MaxPool2d::new(*size);
                Ok(pool.forward(x)?)
            }
            HwLayer::AvgPool(size) => {
                let mut pool = resipe_nn::layers::AvgPool2d::new(*size);
                Ok(pool.forward(x)?)
            }
            HwLayer::Flatten => {
                let mut fl = resipe_nn::layers::Flatten::new();
                Ok(fl.forward(x)?)
            }
        }
    }

    /// Physical crossbar MVMs issued since construction or the last
    /// [`HardwareNetwork::reset_mvm_count`].
    pub fn mvm_count(&self) -> u64 {
        self.mvm_count.load(Ordering::Relaxed)
    }

    /// Resets the MVM counter (e.g. before measuring one batch).
    pub fn reset_mvm_count(&self) {
        self.mvm_count.store(0, Ordering::Relaxed);
    }

    /// Measured crossbar/periphery energy of the MVMs issued so far,
    /// using the given per-engine energy model.
    pub fn measured_energy(
        &self,
        model: &crate::power::EnergyModel,
    ) -> resipe_analog::units::Joules {
        resipe_analog::units::Joules(self.mvm_count() as f64 * model.mvm_energy().total().0)
    }

    /// Argmax predictions over a dataset.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predictions(&self, data: &Dataset) -> Result<Vec<usize>, ResipeError> {
        const EVAL_BATCH: usize = 16;
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut preds = Vec::with_capacity(data.len());
        for chunk in indices.chunks(EVAL_BATCH) {
            let (x, _) = data.batch(chunk)?;
            let logits = self.forward(&x)?;
            preds.extend(logits.argmax_rows());
        }
        Ok(preds)
    }

    /// Classification accuracy over a dataset.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn accuracy(&self, data: &Dataset) -> Result<f32, ResipeError> {
        let preds = self.predictions(data)?;
        Ok(resipe_nn::metrics::accuracy_of(&preds, data.labels())?)
    }
}

/// Convenience for the Fig. 7 experiment: ideal vs. hardware accuracy of
/// one trained network under one variation setting.
///
/// Returns `(ideal_accuracy, hardware_accuracy)`.
///
/// # Errors
///
/// Propagates compile or evaluation errors.
pub fn accuracy_under_variation(
    net: &Network,
    test: &Dataset,
    calibration: &Tensor,
    options: &CompileOptions,
) -> Result<(f32, f32), ResipeError> {
    let mut ideal = net.clone();
    let ideal_acc = resipe_nn::metrics::accuracy(&mut ideal, test)?;
    let hw = HardwareNetwork::compile(net, calibration, options)?;
    let hw_acc = hw.accuracy(test)?;
    Ok((ideal_acc, hw_acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use resipe_nn::data::synth_digits;
    use resipe_nn::models;
    use resipe_nn::train::{Sgd, TrainConfig};

    fn trained_mlp() -> (Network, Dataset, Dataset) {
        let train = synth_digits(200, 1).unwrap();
        let test = synth_digits(60, 2).unwrap();
        let mut net = models::mlp1(7).unwrap();
        Sgd::new(TrainConfig::new(4).with_learning_rate(0.1))
            .fit(&mut net, &train)
            .unwrap();
        (net, train, test)
    }

    #[test]
    fn compiled_mlp_retains_most_accuracy() {
        let (net, train, test) = trained_mlp();
        let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).unwrap();
        let opts = CompileOptions::paper();
        let (ideal, hw) = accuracy_under_variation(&net, &test, &calib, &opts).unwrap();
        assert!(ideal > 0.5, "ideal accuracy {ideal}");
        // σ = 0: only the circuit non-linearity; the paper reports < 2.5 %
        // drop. Allow a modest margin for the small synthetic test set.
        assert!(
            hw >= ideal - 0.10,
            "hardware accuracy {hw} vs ideal {ideal}"
        );
    }

    #[test]
    fn variation_degrades_accuracy_on_average() {
        let (net, train, test) = trained_mlp();
        let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).unwrap();
        let clean = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper())
            .unwrap()
            .accuracy(&test)
            .unwrap();
        // Average a few seeds at a heavy 30 % sigma.
        let model = VariationModel::device_to_device(0.30).unwrap();
        let mut sum = 0.0;
        for seed in 0..3 {
            let opts = CompileOptions::paper()
                .with_variation(model)
                .with_seed(seed);
            let hw = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
            sum += hw.accuracy(&test).unwrap();
        }
        let noisy = sum / 3.0;
        assert!(
            noisy <= clean + 0.02,
            "noisy accuracy {noisy} vs clean {clean}"
        );
    }

    #[test]
    fn conv_network_compiles_and_runs() {
        // A small conv net end-to-end on hardware.
        let train = synth_digits(60, 3).unwrap();
        let mut net = models::lenet(11).unwrap();
        Sgd::new(TrainConfig::new(1).with_learning_rate(0.05))
            .fit(&mut net, &train)
            .unwrap();
        let (calib, _) = train.batch(&[0, 1, 2, 3]).unwrap();
        let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).unwrap();
        assert_eq!(hw.crossbar_layer_count(), 5);
        let (x, _) = train.batch(&[0, 1]).unwrap();
        let y = hw.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn hardware_logits_track_ideal_logits() {
        let (net, train, _) = trained_mlp();
        let (calib, _) = train.batch(&(0..16).collect::<Vec<_>>()).unwrap();
        let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).unwrap();
        let (x, _) = train.batch(&[0, 5, 10]).unwrap();
        let mut ideal = net.clone();
        let y_ideal = ideal.forward(&x).unwrap();
        let y_hw = hw.forward(&x).unwrap();
        let scale = y_ideal.max_abs().max(1e-6);
        let mae = resipe_nn::metrics::mean_absolute_error(&y_ideal, &y_hw).unwrap();
        assert!(mae / scale < 0.25, "normalized logit error {}", mae / scale);
    }

    #[test]
    fn compile_is_deterministic_per_seed() {
        let (net, train, test) = trained_mlp();
        let (calib, _) = train.batch(&[0, 1, 2, 3]).unwrap();
        let model = VariationModel::device_to_device(0.10).unwrap();
        let acc = |seed| {
            let opts = CompileOptions::paper()
                .with_variation(model)
                .with_seed(seed);
            HardwareNetwork::compile(&net, &calib, &opts)
                .unwrap()
                .accuracy(&test)
                .unwrap()
        };
        assert_eq!(acc(5), acc(5));
    }

    #[test]
    fn mvm_counter_and_measured_energy() {
        let (net, train, _) = trained_mlp();
        let (calib, _) = train.batch(&[0, 1]).unwrap();
        let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).unwrap();
        assert_eq!(hw.mvm_count(), 0);
        let (x, _) = train.batch(&[0, 1, 2]).unwrap();
        hw.forward(&x).unwrap();
        // MLP-1: 784 rows -> 25 tiles x 2 arrays = 50 MVMs per sample.
        assert_eq!(hw.mvm_count(), 3 * 50);
        let model = crate::power::EnergyModel::paper();
        let e = hw.measured_energy(&model);
        let expected = 150.0 * model.mvm_energy().total().0;
        assert!((e.0 - expected).abs() < 1e-18);
        hw.reset_mvm_count();
        assert_eq!(hw.mvm_count(), 0);
    }

    #[test]
    fn readout_nonidealities_change_outputs() {
        let (net, train, _) = trained_mlp();
        let (calib, _) = train.batch(&[0, 1, 2, 3]).unwrap();
        let (x, _) = train.batch(&[0, 1]).unwrap();
        let clean = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper())
            .unwrap()
            .forward(&x)
            .unwrap();
        let offset = HardwareNetwork::compile(
            &net,
            &calib,
            &CompileOptions::paper().with_comparator_sigma(0.02),
        )
        .unwrap()
        .forward(&x)
        .unwrap();
        assert_ne!(clean, offset, "comparator offsets must move the logits");
        let quantized = HardwareNetwork::compile(
            &net,
            &calib,
            &CompileOptions::paper().with_time_quantization(resipe_analog::units::Seconds(5e-9)),
        )
        .unwrap()
        .forward(&x)
        .unwrap();
        assert_ne!(clean, quantized, "coarse timing must move the logits");
    }

    #[test]
    fn fault_injection_reports_degradation_without_failing() {
        use crate::repair::TileStatus;
        let (net, train, test) = trained_mlp();
        let (calib, _) = train.batch(&(0..16).collect::<Vec<_>>()).unwrap();
        // 10 % stuck cells, detection only: the part must keep answering
        // and the damage must be visible in the health report.
        let opts = CompileOptions::paper()
            .with_faults(FaultInjection::clustered(0.10, 8, 42))
            .with_repair(crate::repair::RepairPolicy::detect_only());
        let hw = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
        let (acc, health) = hw.accuracy_with_health(&test).unwrap();
        assert!(acc.is_finite() && (0.0..=1.0).contains(&acc));
        assert!(!health.tiles.is_empty());
        assert!(
            health
                .tiles
                .iter()
                .any(|t| t.status == TileStatus::Degraded),
            "10 % faults must leave degraded tiles"
        );
        assert_eq!(health.total_repair_pulses(), 0, "detect-only never writes");
    }

    #[test]
    fn repair_reduces_fault_damage() {
        let (net, train, test) = trained_mlp();
        let (calib, _) = train.batch(&(0..16).collect::<Vec<_>>()).unwrap();
        let mut degraded_no = 0usize;
        let mut degraded_rep = 0usize;
        let mut acc_no = 0.0f32;
        let mut acc_rep = 0.0f32;
        let mut energy = 0.0f64;
        for seed in [9, 10, 11] {
            let base = CompileOptions::paper()
                .with_mapper(TileMapper::paper().with_spare_cols(4))
                .with_faults(FaultInjection::clustered(0.01, 6, seed));
            let no_repair = HardwareNetwork::compile(
                &net,
                &calib,
                &base.with_repair(crate::repair::RepairPolicy::detect_only()),
            )
            .unwrap();
            let repaired = HardwareNetwork::compile(
                &net,
                &calib,
                &base.with_repair(crate::repair::RepairPolicy::full()),
            )
            .unwrap();
            degraded_no += no_repair.health_report().degraded_tiles();
            degraded_rep += repaired.health_report().degraded_tiles();
            energy += repaired.health_report().total_repair_energy().0;
            acc_no += no_repair.accuracy(&test).unwrap();
            acc_rep += repaired.accuracy(&test).unwrap();
        }
        assert!(degraded_no > 0, "1 % clustered faults must trip some tiles");
        assert!(
            degraded_rep < degraded_no,
            "full ladder must fix tiles: {degraded_rep} vs {degraded_no} degraded"
        );
        assert!(energy > 0.0, "repair must account its programming energy");
        // Averaged over seeds, the repaired part must not classify worse
        // (small test set → allow one sample of slack per seed).
        assert!(
            acc_rep >= acc_no - 0.05,
            "repair regressed accuracy: {acc_rep} vs {acc_no} (summed over 3 seeds)"
        );
    }

    #[test]
    fn retention_drift_is_applied_at_compile() {
        let (net, train, _) = trained_mlp();
        let (calib, _) = train.batch(&[0, 1, 2, 3]).unwrap();
        let (x, _) = train.batch(&[0, 1]).unwrap();
        let clean = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper())
            .unwrap()
            .forward(&x)
            .unwrap();
        let drift = RetentionDrift::new(Seconds(1e7)).unwrap();
        let opts = CompileOptions::paper()
            .with_faults(FaultInjection::clustered(0.0, 1, 0).with_drift(drift, Seconds(1e7)));
        let drifted = HardwareNetwork::compile(&net, &calib, &opts)
            .unwrap()
            .forward(&x)
            .unwrap();
        assert_ne!(clean, drifted, "a full τ of drift must move the logits");
    }

    #[test]
    fn name_and_counters() {
        let (net, train, _) = trained_mlp();
        let (calib, _) = train.batch(&[0]).unwrap();
        let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).unwrap();
        assert_eq!(hw.name(), "MLP-1");
        // 784 rows / 32 per tile = 25 tiles × 2 arrays.
        assert_eq!(hw.dense_mvms_per_sample(), 50);
    }
}
