//! The Column Output Generator (COG): bitline voltage → output spike.
//!
//! One COG serves each bitline (Sec. III-C). During the Δt computation
//! stage it samples the bitline capacitor voltage
//!
//! `V_out = V_eq (1 − e^(−Δt / R_eq C_cog))`          (paper Eq. 3)
//!
//! where `V_eq = Σ V_i G_i / Σ G_i` and `R_eq = 1/Σ G_i` (Eq. 2) are the
//! Thevenin equivalent of all wordline drivers seen through the column's
//! ReRAM cells. During S2 it compares the re-ramped `V(C_gd)` against
//! `V_out` and fires the output spike at the crossing (Eq. 4).

use serde::{Deserialize, Serialize};

use resipe_analog::units::{Siemens, Volts};

use crate::config::ResipeConfig;
use crate::error::ResipeError;
use crate::gd::GlobalDecoder;
use crate::spike::SpikeTime;

/// The computation-stage + S2 model of one bitline's output generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnOutputGenerator {
    config: ResipeConfig,
}

/// Result of one column's computation stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnSample {
    /// The Thevenin equivalent source voltage `V_eq` (Eq. 2).
    pub v_eq: Volts,
    /// The sampled capacitor voltage `V_out` (Eq. 3).
    pub v_out: Volts,
    /// The charging exponent `Δt / (R_eq C_cog)` — values ≫ 1 mean the
    /// charging saturated (the Fig. 5 high-conductance regime).
    pub charge_exponent: f64,
}

impl ColumnOutputGenerator {
    /// Creates a COG model for an engine configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: ResipeConfig) -> Result<ColumnOutputGenerator, ResipeError> {
        config.validate()?;
        Ok(ColumnOutputGenerator { config })
    }

    /// Executes the computation stage for one column: wordline voltages
    /// `v_in` drive the column cells `g` in parallel onto `C_cog`
    /// (Eqs. 2–3, exact exponential).
    ///
    /// Columns whose total conductance is zero (every cell fully off and
    /// no leakage path) sample 0 V.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] if the slices differ in
    /// length or are empty, or [`ResipeError::InvalidConfig`] if any
    /// conductance is negative.
    pub fn sample(&self, v_in: &[Volts], g: &[Siemens]) -> Result<ColumnSample, ResipeError> {
        if v_in.len() != g.len() || v_in.is_empty() {
            return Err(ResipeError::DimensionMismatch {
                expected: v_in.len().max(1),
                got: g.len(),
            });
        }
        let mut g_total = 0.0;
        let mut weighted = 0.0;
        for (v, gi) in v_in.iter().zip(g) {
            if gi.0 < 0.0 || !gi.0.is_finite() {
                return Err(ResipeError::InvalidConfig {
                    reason: format!("negative or non-finite conductance {gi}"),
                });
            }
            g_total += gi.0;
            weighted += v.0 * gi.0;
        }
        if g_total == 0.0 {
            return Ok(ColumnSample {
                v_eq: Volts(0.0),
                v_out: Volts(0.0),
                charge_exponent: 0.0,
            });
        }
        let v_eq = weighted / g_total;
        let exponent = self.config.dt().0 * g_total / self.config.c_cog().0;
        let v_out = v_eq * (1.0 - (-exponent).exp());
        Ok(ColumnSample {
            v_eq: Volts(v_eq),
            v_out: Volts(v_out),
            charge_exponent: exponent,
        })
    }

    /// The S2 spike generation: finds when the GD ramp crosses `v_out`.
    /// Saturated outputs (ramp never reaches `v_out` within the slice) are
    /// clamped to the end of the slice, mirroring a spike that never fires
    /// and is read as full scale.
    pub fn spike_for(&self, gd: &GlobalDecoder, v_out: Volts) -> (SpikeTime, bool) {
        match gd.crossing_time(v_out) {
            Some(t) => (SpikeTime(t), false),
            None => (SpikeTime(self.config.slice()), true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resipe_analog::units::Seconds;

    fn cog() -> ColumnOutputGenerator {
        ColumnOutputGenerator::new(ResipeConfig::paper()).expect("valid config")
    }

    #[test]
    fn equal_inputs_give_v_eq() {
        let c = cog();
        let s = c
            .sample(&[Volts(0.5), Volts(0.5)], &[Siemens(1e-4), Siemens(1e-4)])
            .unwrap();
        assert!((s.v_eq.0 - 0.5).abs() < 1e-12);
        // V_out <= V_eq always.
        assert!(s.v_out.0 <= s.v_eq.0);
    }

    #[test]
    fn weighted_average() {
        let c = cog();
        let s = c
            .sample(&[Volts(1.0), Volts(0.0)], &[Siemens(3e-4), Siemens(1e-4)])
            .unwrap();
        assert!((s.v_eq.0 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn charge_exponent_matches_paper_magnitudes() {
        // ΣG = 1.6 mS, Δt = 1 ns, C_cog = 100 fF -> exponent 16 (well
        // saturated); ΣG = 0.32 mS -> exponent 3.2.
        let c = cog();
        let s = c.sample(&[Volts(0.5)], &[Siemens(1.6e-3)]).unwrap();
        assert!((s.charge_exponent - 16.0).abs() < 1e-9);
        let s = c.sample(&[Volts(0.5)], &[Siemens(0.32e-3)]).unwrap();
        assert!((s.charge_exponent - 3.2).abs() < 1e-9);
    }

    #[test]
    fn larger_conductance_charges_closer_to_v_eq() {
        let c = cog();
        let low = c.sample(&[Volts(0.8)], &[Siemens(1e-5)]).unwrap();
        let high = c.sample(&[Volts(0.8)], &[Siemens(1e-3)]).unwrap();
        assert!(high.v_out.0 > low.v_out.0);
        assert!(high.v_out.0 / high.v_eq.0 > 0.99);
    }

    #[test]
    fn zero_conductance_column_is_silent() {
        let c = cog();
        let s = c.sample(&[Volts(1.0)], &[Siemens(0.0)]).unwrap();
        assert_eq!(s.v_out, Volts(0.0));
        assert_eq!(s.charge_exponent, 0.0);
    }

    #[test]
    fn dimension_checks() {
        let c = cog();
        assert!(c.sample(&[Volts(1.0)], &[]).is_err());
        assert!(c.sample(&[], &[]).is_err());
        assert!(c.sample(&[Volts(1.0)], &[Siemens(-1.0)]).is_err());
    }

    #[test]
    fn spike_for_normal_and_saturated() {
        let c = cog();
        let gd = GlobalDecoder::new(ResipeConfig::paper()).unwrap();
        let (spike, saturated) = c.spike_for(&gd, Volts(0.5));
        assert!(!saturated);
        assert!(spike.time().0 > 0.0 && spike.time().0 < 100e-9);
        let (spike, saturated) = c.spike_for(&gd, Volts(1.5));
        assert!(saturated);
        assert_eq!(spike.time(), Seconds(100e-9));
    }
}
