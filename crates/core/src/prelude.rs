//! The blessed public surface, re-exported for one-line imports.
//!
//! ```
//! use resipe::prelude::*;
//! ```
//!
//! pulls in everything the train → compile → run → profile flow needs:
//! the engine and its configuration, the compile pipeline
//! ([`CompileOptions`], [`TileMapper`], [`HardwareNetwork`],
//! [`CompileCache`]), the unified run API ([`RunOptions`],
//! [`RunResult`], [`ExecutionMode`], the kernel [`Backend`]
//! selector), resilience ([`RepairPolicy`],
//! [`HealthReport`], [`Scrubber`], [`ScrubConfig`]), energy
//! ([`EnergyModel`], [`StageEnergy`]),
//! telemetry ([`Telemetry`], [`TelemetrySnapshot`]) and the
//! [`resipe_nn`] data types ([`Tensor`], [`Network`], [`Dataset`]).
//!
//! Anything not re-exported here (circuit netlists, parasitics, the raw
//! mapping internals) remains available under its module path but is
//! considered an advanced interface.

pub use crate::cache::CompileCache;
pub use crate::config::ResipeConfig;
pub use crate::engine::{MacResult, ResipeEngine};
pub use crate::error::ResipeError;
pub use crate::inference::{
    accuracy_under_variation, CompileOptions, EncodingPolicy, ExecutionMode, FaultInjection,
    HardwareNetwork, RunOptions, RunResult,
};
pub use crate::kernel::Backend;
pub use crate::mapping::{SpikeEncoding, TileMapper};
pub use crate::power::{EnergyBreakdown, EnergyModel, PeripheralCosts, StageEnergy};
pub use crate::repair::{HealthReport, RepairPolicy, TileStatus};
pub use crate::scrub::{ScrubConfig, ScrubStats, Scrubber};
pub use crate::spike::SpikeTime;
pub use crate::telemetry::{Telemetry, TelemetrySnapshot};

pub use resipe_nn::data::Dataset;
pub use resipe_nn::network::Network;
pub use resipe_nn::tensor::Tensor;
