//! The Global Decoder (GD): spike timing → wordline voltage.
//!
//! One GD serves a crossbar (Sec. III-C). It charges a reference capacitor
//! `C_gd` through `R_gd` from `V_s`; when a wordline's input spike arrives
//! at `t_in`, a sample-and-hold captures the instantaneous ramp voltage
//!
//! `V_in = V_s (1 − e^(−t_in / R_gd C_gd))`            (paper Eq. 1)
//!
//! The same ramp is reused in S2 to decode output voltages back to times
//! (Eq. 4) — this shared curve is what largely cancels the exponential
//! non-linearity (Sec. III-D).

use serde::{Deserialize, Serialize};

use resipe_analog::units::{Seconds, Volts};

use crate::config::ResipeConfig;
use crate::error::ResipeError;
use crate::spike::SpikeTime;

/// Which charging-curve model to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RampModel {
    /// The exact exponential `V_s (1 − e^(−t/τ))` — what the silicon does.
    #[default]
    Exact,
    /// The linearized `V_s · t / τ` approximation of Eqs. 1/4 — valid only
    /// for `t ≪ τ`, used to quantify the non-linearity error.
    Linear,
}

/// The Global Decoder of one ReSiPE engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalDecoder {
    config: ResipeConfig,
    model: RampModel,
}

impl GlobalDecoder {
    /// Creates a GD with the exact exponential ramp.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: ResipeConfig) -> Result<GlobalDecoder, ResipeError> {
        config.validate()?;
        Ok(GlobalDecoder {
            config,
            model: RampModel::Exact,
        })
    }

    /// Switches the ramp model (exact vs. linearized).
    pub fn with_model(mut self, model: RampModel) -> GlobalDecoder {
        self.model = model;
        self
    }

    /// The active ramp model.
    pub fn model(&self) -> RampModel {
        self.model
    }

    /// The ramp voltage at time `t` after the slice start (Eq. 1).
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::SpikeOutOfSlice`] for negative or
    /// beyond-slice times.
    pub fn ramp_voltage(&self, t: Seconds) -> Result<Volts, ResipeError> {
        // Allow one ULP-scale overshoot at the slice boundary so times
        // computed as `i · step` round-trip cleanly.
        let limit = self.config.slice().0 * (1.0 + 1e-9);
        if t.0 < 0.0 || t.0 > limit || !t.0.is_finite() {
            return Err(ResipeError::SpikeOutOfSlice {
                time: t.0,
                slice: self.config.slice().0,
            });
        }
        let tau = self.config.tau_gd().0;
        let vs = self.config.vs().0;
        Ok(match self.model {
            RampModel::Exact => Volts(vs * (1.0 - (-t.0 / tau).exp())),
            RampModel::Linear => Volts(vs * t.0 / tau),
        })
    }

    /// Samples the ramp at a spike's arrival time — the S1 sample-and-hold
    /// operation producing the wordline voltage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GlobalDecoder::ramp_voltage`].
    pub fn sample(&self, spike: SpikeTime) -> Result<Volts, ResipeError> {
        self.ramp_voltage(spike.time())
    }

    /// Inverts the ramp: the time at which the ramp reaches voltage `v`
    /// (the S2 comparator crossing, Eq. 4). Returns `None` if the ramp
    /// never reaches `v` within the slice — a **saturated** output whose
    /// spike would fall outside S2.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is negative.
    pub fn crossing_time(&self, v: Volts) -> Option<Seconds> {
        debug_assert!(v.0 >= 0.0, "comparator threshold must be non-negative");
        let tau = self.config.tau_gd().0;
        let vs = self.config.vs().0;
        let t = match self.model {
            RampModel::Exact => {
                if v.0 >= vs {
                    return None; // exponential ramp asymptotes below V_s
                }
                -tau * (1.0 - v.0 / vs).ln()
            }
            RampModel::Linear => v.0 * tau / vs,
        };
        (t <= self.config.slice().0).then_some(Seconds(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gd() -> GlobalDecoder {
        GlobalDecoder::new(ResipeConfig::paper()).expect("valid config")
    }

    #[test]
    fn ramp_starts_at_zero() {
        assert_eq!(gd().ramp_voltage(Seconds(0.0)).unwrap(), Volts(0.0));
    }

    #[test]
    fn ramp_matches_exponential() {
        // τ = 10 ns; at t = 10 ns, V = 1 − 1/e.
        let v = gd().ramp_voltage(Seconds(10e-9)).unwrap();
        let expected = 1.0 - (-1.0f64).exp();
        assert!((v.0 - expected).abs() < 1e-12);
    }

    #[test]
    fn ramp_is_monotonic_and_bounded() {
        let g = gd();
        let mut prev = -1.0;
        for i in 0..=100 {
            let t = Seconds(i as f64 * 1e-9);
            let v = g.ramp_voltage(t).unwrap().0;
            assert!(v > prev, "monotonic at {t}");
            assert!(v < 1.0, "bounded by V_s at {t}");
            prev = v;
        }
    }

    #[test]
    fn crossing_inverts_ramp() {
        let g = gd();
        for t_ns in [1.0, 5.0, 20.0, 50.0, 80.0] {
            let t = Seconds(t_ns * 1e-9);
            let v = g.ramp_voltage(t).unwrap();
            let back = g.crossing_time(v).expect("within slice");
            assert!((back.0 - t.0).abs() < 1e-18, "t={t_ns} ns");
        }
    }

    #[test]
    fn crossing_saturates_above_vs() {
        let g = gd();
        assert!(g.crossing_time(Volts(1.0)).is_none());
        assert!(g.crossing_time(Volts(1.5)).is_none());
        // A voltage reachable only after the slice also saturates:
        // V(100 ns) = 1 − e^(−10) ≈ 0.9999546.
        assert!(g.crossing_time(Volts(0.99996)).is_none());
    }

    #[test]
    fn linear_model_overestimates_voltage() {
        let exact = gd();
        let linear = gd().with_model(RampModel::Linear);
        assert_eq!(linear.model(), RampModel::Linear);
        let t = Seconds(20e-9);
        let ve = exact.ramp_voltage(t).unwrap();
        let vl = linear.ramp_voltage(t).unwrap();
        assert!(vl.0 > ve.0, "linear {vl} vs exact {ve}");
        // Linear ramp at t = 2τ reads 2 V_s.
        assert!((vl.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_crossing_is_proportional() {
        let linear = gd().with_model(RampModel::Linear);
        let t = linear.crossing_time(Volts(0.5)).expect("within slice");
        assert!((t.0 - 5e-9).abs() < 1e-18);
    }

    #[test]
    fn out_of_slice_rejected() {
        let g = gd();
        assert!(g.ramp_voltage(Seconds(-1e-9)).is_err());
        assert!(g.ramp_voltage(Seconds(101e-9)).is_err());
        assert!(g.ramp_voltage(Seconds(f64::NAN)).is_err());
    }

    #[test]
    fn sample_equals_ramp_voltage() {
        let g = gd();
        let s = SpikeTime(Seconds(30e-9));
        assert_eq!(
            g.sample(s).unwrap(),
            g.ramp_voltage(Seconds(30e-9)).unwrap()
        );
    }
}
