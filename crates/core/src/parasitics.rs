//! Wire-parasitic (IR-drop) analysis of the computation stage.
//!
//! The paper's 32×32 array is small enough that it neglects interconnect
//! resistance; its conclusion nevertheless calls for "elaborated circuit
//! designs ... to achieve better robustness". This module quantifies the
//! first robustness limit a larger ReSiPE array would hit: **bitline IR
//! drop** during the Δt computation stage.
//!
//! [`ParasiticColumn`] renders one bitline as a full RC ladder on the MNA
//! simulator: every cell injects through its own resistance into a tap of
//! the bitline, consecutive taps are separated by the wire's segment
//! resistance, and `C_cog` hangs at the column's sense end. With zero
//! wire resistance the sampled voltage converges to the ideal Eq. 2–3
//! value; with realistic segment resistance, cells far from the sense
//! end are attenuated — a *position-dependent* weight error no
//! per-column decode constant can remove.

use resipe_analog::netlist::{Netlist, Node};
use resipe_analog::transient::{Transient, TransientConfig};
use resipe_analog::units::{Ohms, Seconds, Siemens, Volts};

use crate::cog::ColumnOutputGenerator;
use crate::config::ResipeConfig;
use crate::error::ResipeError;

/// Typical 65 nm mid-level metal wire resistance per crossbar cell pitch.
pub const TYPICAL_SEGMENT_RESISTANCE: Ohms = Ohms(2.5);

/// One bitline with explicit wire segments.
#[derive(Debug, Clone)]
pub struct ParasiticColumn {
    config: ResipeConfig,
    conductances: Vec<Siemens>,
    segment_resistance: Ohms,
}

/// Result of one parasitic computation-stage simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParasiticSample {
    /// The voltage sampled on `C_cog` at the end of the stage.
    pub v_out: Volts,
    /// The ideal (zero-wire-resistance) Eq. 2–3 value.
    pub v_ideal: Volts,
}

impl ParasiticSample {
    /// The relative IR-drop error `(v_ideal − v_out) / v_ideal`.
    pub fn relative_error(&self) -> f64 {
        if self.v_ideal.0 == 0.0 {
            0.0
        } else {
            (self.v_ideal.0 - self.v_out.0) / self.v_ideal.0
        }
    }
}

impl ParasiticColumn {
    /// Builds a column model. Cell index 0 sits farthest from the sense
    /// end (worst IR drop), the last cell adjacent to `C_cog`.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] for an invalid engine
    /// configuration, an empty column, non-positive conductances, or a
    /// negative segment resistance.
    pub fn new(
        config: ResipeConfig,
        conductances: &[Siemens],
        segment_resistance: Ohms,
    ) -> Result<ParasiticColumn, ResipeError> {
        config.validate()?;
        if conductances.is_empty() {
            return Err(ResipeError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        }
        for g in conductances {
            if !(g.0 > 0.0) || !g.0.is_finite() {
                return Err(ResipeError::InvalidConfig {
                    reason: format!("cell conductance must be positive, got {g}"),
                });
            }
        }
        if segment_resistance.0 < 0.0 || !segment_resistance.0.is_finite() {
            return Err(ResipeError::InvalidConfig {
                reason: format!(
                    "segment resistance must be non-negative, got {segment_resistance}"
                ),
            });
        }
        Ok(ParasiticColumn {
            config,
            conductances: conductances.to_vec(),
            segment_resistance,
        })
    }

    /// Simulates the Δt computation stage with the given held wordline
    /// voltages, returning the sampled `V(C_cog)` and the ideal value.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::DimensionMismatch`] for a length mismatch or
    /// propagated analog errors.
    pub fn compute(&self, v_in: &[Volts]) -> Result<ParasiticSample, ResipeError> {
        if v_in.len() != self.conductances.len() {
            return Err(ResipeError::DimensionMismatch {
                expected: self.conductances.len(),
                got: v_in.len(),
            });
        }

        // Build: held source -> cell resistor -> bitline tap; taps chained
        // by wire segments; C_cog at the last tap.
        let mut net = Netlist::new();
        let mut prev_tap: Option<Node> = None;
        let mut sense = Node::GROUND;
        for (i, (g, v)) in self.conductances.iter().zip(v_in).enumerate() {
            let held = net.node(&format!("held{i}"));
            net.voltage_source(Node::GROUND, held, *v);
            let tap = net.node(&format!("bl{i}"));
            net.resistor(held, tap, g.recip());
            if let Some(prev) = prev_tap {
                if self.segment_resistance.0 > 0.0 {
                    net.resistor(prev, tap, self.segment_resistance);
                } else {
                    // Zero wire resistance: model as a very small residual
                    // to keep the MNA system well posed.
                    net.resistor(prev, tap, Ohms(1e-3));
                }
            }
            prev_tap = Some(tap);
            sense = tap;
        }
        net.capacitor(sense, Node::GROUND, self.config.c_cog());

        // Integrate exactly the computation stage.
        let dt = self.config.dt();
        let cfg = TransientConfig::new(dt).with_step(Seconds(dt.0 / 2000.0));
        let result = Transient::new(&net, cfg)?.run()?;
        let v_out = result.final_voltage(sense)?;

        let ideal = ColumnOutputGenerator::new(self.config)?
            .sample(v_in, &self.conductances)?
            .v_out;
        Ok(ParasiticSample {
            v_out,
            v_ideal: ideal,
        })
    }

    /// Sweeps the wire segment resistance, returning the relative error
    /// at each point — the robustness curve for scaling the array.
    ///
    /// # Errors
    ///
    /// Propagates [`ParasiticColumn::compute`] errors.
    pub fn sweep_segment_resistance(
        config: ResipeConfig,
        conductances: &[Siemens],
        v_in: &[Volts],
        resistances: &[Ohms],
    ) -> Result<Vec<(Ohms, f64)>, ResipeError> {
        resistances
            .iter()
            .map(|&r| {
                let col = ParasiticColumn::new(config, conductances, r)?;
                let sample = col.compute(v_in)?;
                Ok((r, sample.relative_error()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: usize) -> (Vec<Siemens>, Vec<Volts>) {
        let g = (0..n)
            .map(|i| Siemens(5e-6 + 1e-6 * (i % 7) as f64))
            .collect();
        let v = (0..n)
            .map(|i| Volts(0.2 + 0.02 * (i % 30) as f64))
            .collect();
        (g, v)
    }

    #[test]
    fn zero_wire_resistance_matches_ideal() {
        let (g, v) = column(8);
        let col = ParasiticColumn::new(ResipeConfig::paper(), &g, Ohms(0.0)).unwrap();
        let s = col.compute(&v).unwrap();
        assert!(
            s.relative_error().abs() < 0.02,
            "error {} (v_out {}, ideal {})",
            s.relative_error(),
            s.v_out,
            s.v_ideal
        );
    }

    #[test]
    fn ir_drop_attenuates_output() {
        let (g, v) = column(32);
        let clean = ParasiticColumn::new(ResipeConfig::paper(), &g, Ohms(0.0))
            .unwrap()
            .compute(&v)
            .unwrap();
        let wired = ParasiticColumn::new(ResipeConfig::paper(), &g, Ohms(500.0))
            .unwrap()
            .compute(&v)
            .unwrap();
        assert!(
            wired.v_out.0 < clean.v_out.0,
            "wire {} vs clean {}",
            wired.v_out,
            clean.v_out
        );
        assert!(wired.relative_error() > 0.005);
    }

    #[test]
    fn error_grows_with_segment_resistance() {
        let (g, v) = column(16);
        let sweep = ParasiticColumn::sweep_segment_resistance(
            ResipeConfig::paper(),
            &g,
            &v,
            &[Ohms(0.0), Ohms(50.0), Ohms(500.0)],
        )
        .unwrap();
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].1 <= sweep[1].1 + 1e-3);
        assert!(sweep[1].1 < sweep[2].1);
    }

    #[test]
    fn typical_wire_resistance_is_negligible_at_32_cells() {
        // The paper's implicit assumption: at 32×32 and 65 nm wire pitch,
        // IR drop is a sub-percent effect.
        let (g, v) = column(32);
        let col =
            ParasiticColumn::new(ResipeConfig::paper(), &g, TYPICAL_SEGMENT_RESISTANCE).unwrap();
        let s = col.compute(&v).unwrap();
        assert!(
            s.relative_error().abs() < 0.03,
            "error {}",
            s.relative_error()
        );
    }

    #[test]
    fn validation_errors() {
        let cfg = ResipeConfig::paper();
        assert!(ParasiticColumn::new(cfg, &[], Ohms(1.0)).is_err());
        assert!(ParasiticColumn::new(cfg, &[Siemens(0.0)], Ohms(1.0)).is_err());
        assert!(ParasiticColumn::new(cfg, &[Siemens(1e-5)], Ohms(-1.0)).is_err());
        let col = ParasiticColumn::new(cfg, &[Siemens(1e-5); 2], Ohms(1.0)).unwrap();
        assert!(col.compute(&[Volts(0.5)]).is_err());
    }
}
