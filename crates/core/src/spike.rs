//! The single-spiking data format.
//!
//! A datum is one spike whose **arrival time** within a slice carries the
//! value: value 0.0 fires at t = 0, value 1.0 fires at `t_max`
//! (Sec. III-A). Spike width and shape carry no information — the paper
//! lists this as the format's first advantage.

use serde::{Deserialize, Serialize};

use resipe_analog::units::Seconds;

use crate::config::ResipeConfig;
use crate::error::ResipeError;

/// The arrival time of a single spike, measured from the start of its
/// slice.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SpikeTime(pub Seconds);

impl SpikeTime {
    /// A spike at the very start of the slice (value 0).
    pub const ZERO: SpikeTime = SpikeTime(Seconds(0.0));

    /// The arrival time.
    pub fn time(self) -> Seconds {
        self.0
    }
}

impl std::fmt::Display for SpikeTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spike@{:.3} ns", self.0.as_nanos())
    }
}

/// Encoder/decoder between normalized values and spike times.
///
/// ```
/// use resipe::config::ResipeConfig;
/// use resipe::spike::SpikeCodec;
///
/// # fn main() -> Result<(), resipe::ResipeError> {
/// let codec = SpikeCodec::new(ResipeConfig::paper())?;
/// let spike = codec.encode(0.5)?;
/// assert!((spike.time().as_nanos() - 40.0).abs() < 1e-9); // t_max = 80 ns
/// assert!((codec.decode(spike) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeCodec {
    config: ResipeConfig,
}

impl SpikeCodec {
    /// Creates a codec for an engine configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: ResipeConfig) -> Result<SpikeCodec, ResipeError> {
        config.validate()?;
        Ok(SpikeCodec { config })
    }

    /// The configuration this codec encodes for.
    pub fn config(&self) -> &ResipeConfig {
        &self.config
    }

    /// Encodes a normalized value in `\[0, 1\]` as a spike time
    /// `t = value · t_max`.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::SpikeOutOfSlice`] if the value is outside
    /// `\[0, 1\]` or not finite.
    pub fn encode(&self, value: f64) -> Result<SpikeTime, ResipeError> {
        if !(0.0..=1.0).contains(&value) || !value.is_finite() {
            return Err(ResipeError::SpikeOutOfSlice {
                time: value * self.config.t_max().0,
                slice: self.config.slice().0,
            });
        }
        Ok(SpikeTime(Seconds(value * self.config.t_max().0)))
    }

    /// Encodes a slice of normalized values.
    ///
    /// # Errors
    ///
    /// Returns the first encode error.
    pub fn encode_all(&self, values: &[f64]) -> Result<Vec<SpikeTime>, ResipeError> {
        values.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decodes a spike time back to a normalized value `t / t_max`.
    /// Times beyond `t_max` (a saturated output) decode to values > 1.
    pub fn decode(&self, spike: SpikeTime) -> f64 {
        spike.0 .0 / self.config.t_max().0
    }

    /// Decodes a slice of spike times.
    pub fn decode_all(&self, spikes: &[SpikeTime]) -> Vec<f64> {
        spikes.iter().map(|&s| self.decode(s)).collect()
    }

    /// The number of distinguishable values given the spike pulse width —
    /// the effective precision of the format (`t_max / pulse_width`
    /// levels).
    pub fn resolvable_levels(&self) -> usize {
        (self.config.t_max().0 / self.config.pulse_width().0).floor() as usize
    }

    /// Effective bits of precision: `log2(resolvable_levels)`.
    pub fn effective_bits(&self) -> f64 {
        (self.resolvable_levels() as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> SpikeCodec {
        SpikeCodec::new(ResipeConfig::paper()).expect("paper config valid")
    }

    #[test]
    fn encode_endpoints() {
        let c = codec();
        assert_eq!(c.encode(0.0).unwrap(), SpikeTime::ZERO);
        let one = c.encode(1.0).unwrap();
        assert!((one.time().as_nanos() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip() {
        let c = codec();
        for v in [0.0, 0.1, 0.33, 0.5, 0.99, 1.0] {
            let back = c.decode(c.encode(v).unwrap());
            assert!((back - v).abs() < 1e-12, "{v} -> {back}");
        }
    }

    #[test]
    fn encode_all_and_decode_all() {
        let c = codec();
        let spikes = c.encode_all(&[0.0, 0.5, 1.0]).unwrap();
        let values = c.decode_all(&spikes);
        assert_eq!(values.len(), 3);
        assert!((values[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_rejected() {
        let c = codec();
        assert!(matches!(
            c.encode(-0.1),
            Err(ResipeError::SpikeOutOfSlice { .. })
        ));
        assert!(c.encode(1.5).is_err());
        assert!(c.encode(f64::NAN).is_err());
        assert!(c.encode_all(&[0.5, 2.0]).is_err());
    }

    #[test]
    fn saturated_decode_exceeds_one() {
        let c = codec();
        let v = c.decode(SpikeTime(Seconds(100e-9)));
        assert!(v > 1.0);
    }

    #[test]
    fn precision_from_pulse_width() {
        let c = codec();
        // 80 ns range / 1 ns pulse = 80 levels ≈ 6.3 bits.
        assert_eq!(c.resolvable_levels(), 80);
        assert!((c.effective_bits() - 80f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let s = SpikeTime(Seconds(40e-9));
        assert_eq!(format!("{s}"), "spike@40.000 ns");
    }
}
