//! Energy and power model of the ReSiPE engine (behind Table II).
//!
//! The paper reports that the **COG cluster contributes 98.1 % of the
//! entire power consumption**, "because the capacitor C_cog assigned to
//! each bitline needs charging during S2", and that future MIM-capacitor
//! scaling would reduce it further. This module reproduces that breakdown
//! from first principles plus a small set of 65 nm peripheral constants:
//!
//! * **COG cluster** (per bitline): the continuously-biased comparator
//!   active for the whole of S2 (the dominant term), the `C_cog` charge,
//!   and the spike-generation logic (inverter + AND);
//! * **Global decoder**: two `C_gd` ramp charges per MVM (S1 + S2), the
//!   per-wordline sample-and-hold capacitors, and control logic;
//! * **Crossbar**: the charge delivered through the ReRAM cells onto
//!   `C_cog` during the Δt computation stage.
//!
//! The peripheral constants are calibrated so that the paper's 98.1 %
//! COG share emerges at the published 32×32 operating point — see
//! `DESIGN.md` for the calibration rationale.

use serde::{Deserialize, Serialize};

use resipe_analog::units::{Farads, Joules, Seconds, Volts, Watts};

use crate::config::ResipeConfig;
use crate::error::ResipeError;

/// Per-component 65 nm peripheral constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeripheralCosts {
    /// Static power of one COG comparator while it is armed (all of S2).
    pub comparator_power: Watts,
    /// Energy of one output spike generation (inverter + AND + buffer).
    pub spike_energy: Joules,
    /// One sample-and-hold capacitor per wordline.
    pub sh_capacitance: Farads,
    /// GD sequencing/control logic energy per MVM.
    pub gd_control_energy: Joules,
}

impl PeripheralCosts {
    /// Calibrated 65 nm values (see module docs).
    pub fn paper() -> PeripheralCosts {
        PeripheralCosts {
            comparator_power: Watts(29e-6),
            spike_energy: Joules(20e-15),
            sh_capacitance: Farads(10e-15),
            gd_control_energy: Joules(0.6e-12),
        }
    }
}

impl Default for PeripheralCosts {
    fn default() -> PeripheralCosts {
        PeripheralCosts::paper()
    }
}

/// Energy breakdown of one complete MVM (both slices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// COG cluster: comparators + `C_cog` + spike generation.
    pub cog: Joules,
    /// Global decoder: ramps + sample-and-hold + control.
    pub gd: Joules,
    /// Crossbar: charge delivered through the cells during Δt.
    pub crossbar: Joules,
}

impl EnergyBreakdown {
    /// Total energy per MVM.
    pub fn total(&self) -> Joules {
        self.cog + self.gd + self.crossbar
    }

    /// The COG cluster's share of the total (the paper reports 98.1 %).
    pub fn cog_fraction(&self) -> f64 {
        self.cog.0 / self.total().0
    }
}

/// Energy of one MVM attributed to the three pipeline stages — the
/// telemetry view of [`EnergyBreakdown`].
///
/// The component split follows the circuit's timeline: **S1 encode**
/// takes the first `C_gd` ramp charge plus the per-wordline
/// sample-and-hold; the **computation stage** takes the charge delivered
/// through the cells during Δt; **S2 decode** takes the second ramp,
/// the sequencing control, and the entire COG cluster (the comparators
/// are armed, `C_cog` charges and spikes are generated during S2 — the
/// paper's dominant 98.1 % term). The stage total equals
/// [`EnergyBreakdown::total`] for the same model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageEnergy {
    /// S1: first ramp charge + sample-and-hold.
    pub s1_encode: Joules,
    /// Computation stage: cell charge onto `C_cog` during Δt.
    pub crossbar: Joules,
    /// S2: second ramp + control + the COG cluster.
    pub s2_decode: Joules,
}

impl StageEnergy {
    /// Total energy per MVM across the three stages.
    pub fn total(&self) -> Joules {
        self.s1_encode + self.crossbar + self.s2_decode
    }
}

/// The ReSiPE energy/power model for one engine instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    config: ResipeConfig,
    rows: usize,
    cols: usize,
    costs: PeripheralCosts,
    /// Average equivalent column voltage during computation (signal
    /// activity assumption; 0.5 V for uniformly-distributed inputs at
    /// `V_s` = 1 V).
    avg_v_eq: Volts,
    /// Average held wordline voltage during S1.
    avg_v_in: Volts,
}

impl EnergyModel {
    /// The paper's operating point: 32×32 array, published circuit
    /// parameters, calibrated peripherals.
    pub fn paper() -> EnergyModel {
        EnergyModel::new(ResipeConfig::paper(), 32, 32, PeripheralCosts::paper())
            .expect("paper operating point is valid")
    }

    /// Creates a model for an arbitrary array size.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] for an invalid engine
    /// configuration or zero dimensions.
    pub fn new(
        config: ResipeConfig,
        rows: usize,
        cols: usize,
        costs: PeripheralCosts,
    ) -> Result<EnergyModel, ResipeError> {
        config.validate()?;
        if rows == 0 || cols == 0 {
            return Err(ResipeError::InvalidConfig {
                reason: "array dimensions must be nonzero".into(),
            });
        }
        Ok(EnergyModel {
            config,
            rows,
            cols,
            costs,
            avg_v_eq: Volts(0.5),
            avg_v_in: Volts(0.8),
        })
    }

    /// Overrides the signal-activity assumptions.
    pub fn with_activity(mut self, avg_v_eq: Volts, avg_v_in: Volts) -> EnergyModel {
        self.avg_v_eq = avg_v_eq;
        self.avg_v_in = avg_v_in;
        self
    }

    /// Array rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Energy of one complete MVM, broken down by component.
    pub fn mvm_energy(&self) -> EnergyBreakdown {
        let cfg = &self.config;
        let vs = cfg.vs().0;
        let v_eq = self.avg_v_eq.0;

        // COG cluster: per column, the comparator is armed for all of S2,
        // C_cog charges to ~V_eq, and one spike is generated.
        let comparator = self.costs.comparator_power.0 * cfg.slice().0;
        let cog_cap = cfg.c_cog().0 * v_eq * v_eq;
        let per_cog = comparator + cog_cap + self.costs.spike_energy.0;
        let cog = Joules(self.cols as f64 * per_cog);

        // Global decoder: two full ramp charges (S1 + S2) of C_gd, one
        // sample per wordline, and the control logic.
        let ramp = 2.0 * cfg.c_gd().0 * vs * vs;
        let sh = self.rows as f64 * self.costs.sh_capacitance.0 * self.avg_v_in.0 * self.avg_v_in.0;
        let gd = Joules(ramp + sh + self.costs.gd_control_energy.0);

        // Crossbar: the wordline drivers deliver ~C_cog·V_eq² through the
        // cells per column during the Δt stage.
        let crossbar = Joules(self.cols as f64 * cfg.c_cog().0 * v_eq * v_eq);

        EnergyBreakdown { cog, gd, crossbar }
    }

    /// Energy of one complete MVM attributed to the S1 / computation /
    /// S2 stages. The same circuit terms as [`EnergyModel::mvm_energy`],
    /// regrouped by when they are spent; the stage total matches the
    /// component total (see [`StageEnergy`]).
    pub fn stage_energy(&self) -> StageEnergy {
        let cfg = &self.config;
        let vs = cfg.vs().0;
        let v_eq = self.avg_v_eq.0;
        let half_ramp = cfg.c_gd().0 * vs * vs;
        let sh = self.rows as f64 * self.costs.sh_capacitance.0 * self.avg_v_in.0 * self.avg_v_in.0;
        let comparator = self.costs.comparator_power.0 * cfg.slice().0;
        let cog_cap = cfg.c_cog().0 * v_eq * v_eq;
        let per_cog = comparator + cog_cap + self.costs.spike_energy.0;
        StageEnergy {
            s1_encode: Joules(half_ramp + sh),
            crossbar: Joules(self.cols as f64 * cfg.c_cog().0 * v_eq * v_eq),
            s2_decode: Joules(
                half_ramp + self.costs.gd_control_energy.0 + self.cols as f64 * per_cog,
            ),
        }
    }

    /// Average power: MVM energy over the two-slice latency.
    pub fn power(&self) -> Watts {
        self.mvm_energy().total() / self.config.mvm_latency()
    }

    /// Operations per MVM: one multiply + one accumulate per cell.
    pub fn ops_per_mvm(&self) -> f64 {
        2.0 * self.rows as f64 * self.cols as f64
    }

    /// Throughput in operations per second (one MVM per two slices).
    pub fn throughput_ops(&self) -> f64 {
        self.ops_per_mvm() / self.config.mvm_latency().0
    }

    /// Power efficiency in operations per joule (ops/s per watt).
    pub fn power_efficiency(&self) -> f64 {
        self.throughput_ops() / self.power().0
    }

    /// Latency of one MVM.
    pub fn latency(&self) -> Seconds {
        self.config.mvm_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cog_share_is_98_percent() {
        let e = EnergyModel::paper().mvm_energy();
        let frac = e.cog_fraction();
        assert!(
            (frac - 0.981).abs() < 0.005,
            "COG fraction {frac:.4}, paper reports 0.981"
        );
    }

    #[test]
    fn paper_power_is_sub_milliwatt() {
        let p = EnergyModel::paper().power();
        assert!(
            p.as_milli() > 0.3 && p.as_milli() < 0.7,
            "power {} mW",
            p.as_milli()
        );
    }

    #[test]
    fn energy_scales_with_columns() {
        let small =
            EnergyModel::new(ResipeConfig::paper(), 32, 16, PeripheralCosts::paper()).unwrap();
        let large = EnergyModel::paper();
        assert!(large.mvm_energy().cog.0 > 1.9 * small.mvm_energy().cog.0);
    }

    #[test]
    fn smaller_ccog_cuts_cog_energy() {
        // The paper: "future technology scaling that enables smaller MIM
        // capacitors in COG clusters could induce further energy
        // reduction" — and our comparator term dominates, so halving
        // C_cog reduces but does not halve COG energy.
        let base = EnergyModel::paper();
        let scaled = EnergyModel::new(
            ResipeConfig::paper().with_c_cog(Farads(50e-15)),
            32,
            32,
            PeripheralCosts::paper(),
        )
        .unwrap();
        assert!(scaled.mvm_energy().cog.0 < base.mvm_energy().cog.0);
    }

    #[test]
    fn throughput_and_efficiency() {
        let m = EnergyModel::paper();
        // 2·32·32 ops per 201 ns ≈ 10.2 GOPS.
        let gops = m.throughput_ops() / 1e9;
        assert!((gops - 10.19).abs() < 0.1, "{gops} GOPS");
        // Efficiency ≈ 21 TOPS/W.
        let tops_w = m.power_efficiency() / 1e12;
        assert!(tops_w > 15.0 && tops_w < 30.0, "{tops_w} TOPS/W");
    }

    #[test]
    fn breakdown_total_is_sum() {
        let e = EnergyModel::paper().mvm_energy();
        let sum = e.cog.0 + e.gd.0 + e.crossbar.0;
        assert!((e.total().0 - sum).abs() < 1e-24);
    }

    #[test]
    fn stage_attribution_matches_component_total() {
        let m = EnergyModel::paper();
        let total = m.mvm_energy().total().0;
        let staged = m.stage_energy().total().0;
        assert!(
            ((staged - total) / total).abs() < 1e-12,
            "stage split {staged:e} vs component total {total:e}"
        );
        // S2 dominates: it carries the whole COG cluster (98.1 %).
        let s2 = m.stage_energy().s2_decode.0;
        assert!(s2 / total > 0.95, "S2 share {}", s2 / total);
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(EnergyModel::new(ResipeConfig::paper(), 0, 32, PeripheralCosts::paper()).is_err());
    }

    #[test]
    fn activity_override_changes_energy() {
        let hot = EnergyModel::paper().with_activity(Volts(0.9), Volts(0.9));
        let cold = EnergyModel::paper().with_activity(Volts(0.1), Volts(0.1));
        assert!(hot.mvm_energy().crossbar.0 > cold.mvm_energy().crossbar.0);
    }
}
