//! Background scrubbing: BIST-walk idle tiles, repair degradation, and
//! hot-swap the repaired state under live traffic.
//!
//! A deployed part accumulates damage while serving (see
//! [`resipe_reram::aging`]): retention drift relaxes conductances and
//! endurance wear strikes cells stuck. The [`Scrubber`] is the defensive
//! counterpart — a background loop that
//!
//! 1. walks every tile of the currently-published
//!    [`NetworkEpoch`](crate::inference::HardwareNetwork) and runs the
//!    same [`run_bist`] probe the compile-time repair ladder uses;
//! 2. compares each tile's failing-column count against a **per-tile
//!    health baseline** recorded when the scrubber attached (so tiles
//!    that were already degraded at compile time are not futilely
//!    re-repaired every pass);
//! 3. on regression, clones the layer's crossbar state *off the hot
//!    path*, runs [`repair_tile`] on the clone, and
//! 4. publishes every repaired layer in **one atomic epoch swap**:
//!    in-flight requests finish on the epoch they loaded, new requests
//!    see the repaired network, and no request ever observes a torn mix
//!    of pre- and post-repair layers.
//!
//! # Determinism
//!
//! Repair programming noise is drawn from a substream chain of the
//! scrubber's seed: pass → layer → tile. A scrub pass is therefore a
//! pure function of `(seed, pass index, published state)` — two
//! scrubbers attached to bit-identical networks repair them into
//! bit-identical states, which is what lets concurrency tests pin
//! hot-swapped outputs against a precomputed reference.
//!
//! # Wall clock
//!
//! The only wall-clock reads are observational: the pass interval of the
//! background thread and the degraded-serving span (detection →
//! publish) reported to telemetry. Neither influences a repaired bit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::ResipeError;
use crate::inference::{HardwareNetwork, LayerState};
use crate::repair::{repair_tile, run_bist, RepairPolicy};
use crate::seeds;
use crate::telemetry::Counter;

/// Configures the background scrubber.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubConfig {
    /// Sleep between background scrub passes.
    pub interval: Duration,
    /// Detection threshold and repair ladder applied to regressed tiles.
    pub policy: RepairPolicy,
    /// Base seed of the repair programming-noise substream chain.
    pub seed: u64,
}

impl ScrubConfig {
    /// The default scrub loop: a 50 ms pass interval, the full repair
    /// ladder, seed 0.
    pub fn new() -> ScrubConfig {
        ScrubConfig {
            interval: Duration::from_millis(50),
            policy: RepairPolicy::full(),
            seed: 0,
        }
    }

    /// Sets the background pass interval.
    pub fn with_interval(mut self, interval: Duration) -> ScrubConfig {
        self.interval = interval;
        self
    }

    /// Sets the detection/repair policy.
    pub fn with_policy(mut self, policy: RepairPolicy) -> ScrubConfig {
        self.policy = policy;
        self
    }

    /// Sets the base seed of the repair noise substreams.
    pub fn with_seed(mut self, seed: u64) -> ScrubConfig {
        self.seed = seed;
        self
    }
}

impl Default for ScrubConfig {
    fn default() -> ScrubConfig {
        ScrubConfig::new()
    }
}

/// Lock-free scrub counters, shared between the scrubber and whoever
/// reports its activity (e.g. the serving stats).
#[derive(Debug, Default)]
pub struct ScrubCounters {
    passes: AtomicU64,
    tiles_scrubbed: AtomicU64,
    repairs: AtomicU64,
    swaps: AtomicU64,
    degraded_nanos: AtomicU64,
}

impl ScrubCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ScrubStats {
        ScrubStats {
            passes: self.passes.load(Ordering::Relaxed),
            tiles_scrubbed: self.tiles_scrubbed.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            degraded_nanos: self.degraded_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ScrubCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubStats {
    /// Scrub passes completed.
    pub passes: u64,
    /// Tiles BIST-checked across all passes.
    pub tiles_scrubbed: u64,
    /// Tile repairs triggered (tiles whose failing-column count exceeded
    /// their baseline).
    pub repairs: u64,
    /// Epoch swaps published by the scrubber.
    pub swaps: u64,
    /// Wall-clock nanoseconds between detecting degradation and
    /// publishing the repaired epoch, summed over passes.
    pub degraded_nanos: u64,
}

/// Outcome of one synchronous [`Scrubber::scrub_pass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubPassReport {
    /// Zero-based index of this pass on this scrubber.
    pub pass: u64,
    /// Tiles BIST-checked this pass.
    pub tiles_scrubbed: u64,
    /// Tile repairs triggered this pass.
    pub repairs: u64,
    /// `true` if a repaired epoch was published.
    pub swapped: bool,
    /// The epoch current after this pass (unchanged when `!swapped` and
    /// nothing else published concurrently).
    pub epoch: u64,
}

/// Shared state between the owning [`Scrubber`] handle and its
/// background thread.
#[derive(Debug)]
struct ScrubInner {
    hw: Arc<HardwareNetwork>,
    config: ScrubConfig,
    counters: Arc<ScrubCounters>,
    /// Per-`[layer][tile]` failing-column counts the scrubber considers
    /// "as healthy as this tile gets": recorded at attach, lowered (or
    /// raised, for permanently degraded tiles) to the post-repair count
    /// after each repair. A tile is only repaired when it regresses
    /// *past* its baseline.
    baseline: Mutex<Vec<Vec<usize>>>,
    stop: AtomicBool,
}

impl ScrubInner {
    /// One synchronous scrub pass over the currently-published epoch.
    fn scrub_pass(&self) -> Result<ScrubPassReport, ResipeError> {
        let pass = self.counters.passes.fetch_add(1, Ordering::Relaxed);
        let pass_seed = seeds::substream(self.config.seed, pass);
        let epoch = self.hw.current_epoch();
        let engine = self.hw.engine();
        let telemetry = self.hw.telemetry().clone();
        let mut baseline = self.baseline.lock().expect("scrub baseline poisoned");

        let mut updates: Vec<(usize, Arc<LayerState>)> = Vec::new();
        let mut tiles_scrubbed = 0u64;
        let mut repairs = 0u64;
        let mut degraded_at: Option<Instant> = None;
        for (li, state) in epoch.layers.iter().enumerate() {
            let layer_seed = seeds::substream(pass_seed, li as u64);
            let window = state.mapped.window();
            // The repair clone is built lazily: a layer whose tiles all
            // pass is never copied and its `LayerState` Arc (with its
            // built `BatchPlan`) carries over into the next epoch as-is.
            let mut repaired = None;
            for ti in 0..state.mapped.tiles().len() {
                tiles_scrubbed += 1;
                let report = run_bist(
                    engine,
                    &state.mapped.tiles()[ti],
                    window,
                    &self.config.policy.bist,
                )?;
                if report.failing_count() <= baseline[li][ti] {
                    continue;
                }
                if degraded_at.is_none() {
                    degraded_at = Some(Instant::now());
                }
                let mapped = repaired.get_or_insert_with(|| state.mapped.clone());
                let mut rng = StdRng::seed_from_u64(seeds::substream(layer_seed, ti as u64));
                let health = repair_tile(engine, mapped, ti, li, &self.config.policy, &mut rng)?;
                // Whatever the ladder could not fix is this tile's new
                // normal — do not burn pulses on it again every pass.
                baseline[li][ti] = health.failing_after;
                repairs += 1;
            }
            if let Some(mapped) = repaired {
                updates.push((li, Arc::new(LayerState::new(mapped, state.encoding()))));
            }
        }
        drop(baseline);

        let swapped = !updates.is_empty();
        let current = if swapped {
            let next = self.hw.publish_layer_updates(updates);
            self.counters.swaps.fetch_add(1, Ordering::Relaxed);
            next
        } else {
            self.hw.epoch()
        };
        if let Some(t0) = degraded_at {
            let nanos = t0.elapsed().as_nanos() as u64;
            self.counters
                .degraded_nanos
                .fetch_add(nanos, Ordering::Relaxed);
            telemetry.add(Counter::DegradedServingNanos, nanos);
        }
        self.counters
            .tiles_scrubbed
            .fetch_add(tiles_scrubbed, Ordering::Relaxed);
        self.counters.repairs.fetch_add(repairs, Ordering::Relaxed);
        telemetry.add(Counter::ScrubPasses, 1);
        telemetry.add(Counter::TilesScrubbed, tiles_scrubbed);
        telemetry.add(Counter::ScrubRepairs, repairs);
        Ok(ScrubPassReport {
            pass,
            tiles_scrubbed,
            repairs,
            swapped,
            epoch: current,
        })
    }
}

/// A background scrubber attached to one [`HardwareNetwork`].
///
/// Use [`Scrubber::scrub_pass`] to scrub synchronously (campaigns,
/// tests) or [`Scrubber::start`]/[`Scrubber::stop`] to run passes on a
/// background thread every [`ScrubConfig::interval`]. Dropping the
/// scrubber stops the thread.
#[derive(Debug)]
pub struct Scrubber {
    inner: Arc<ScrubInner>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Scrubber {
    /// Attaches a scrubber to `hw`, recording the per-tile health
    /// baseline from the currently-published epoch.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from the baseline BIST pass.
    pub fn new(hw: Arc<HardwareNetwork>, config: ScrubConfig) -> Result<Scrubber, ResipeError> {
        let epoch = hw.current_epoch();
        let mut baseline = Vec::with_capacity(epoch.layers.len());
        for state in &epoch.layers {
            let window = state.mapped.window();
            let mut layer_baseline = Vec::with_capacity(state.mapped.tiles().len());
            for tile in state.mapped.tiles() {
                let report = run_bist(hw.engine(), tile, window, &config.policy.bist)?;
                layer_baseline.push(report.failing_count());
            }
            baseline.push(layer_baseline);
        }
        drop(epoch);
        Ok(Scrubber {
            inner: Arc::new(ScrubInner {
                hw,
                config,
                counters: Arc::new(ScrubCounters::default()),
                baseline: Mutex::new(baseline),
                stop: AtomicBool::new(false),
            }),
            handle: Mutex::new(None),
        })
    }

    /// The network this scrubber is attached to.
    pub fn network(&self) -> &Arc<HardwareNetwork> {
        &self.inner.hw
    }

    /// The shared counter handle (clone it into serving stats).
    pub fn counters(&self) -> Arc<ScrubCounters> {
        Arc::clone(&self.inner.counters)
    }

    /// A point-in-time copy of the scrub counters.
    pub fn stats(&self) -> ScrubStats {
        self.inner.counters.snapshot()
    }

    /// Runs one synchronous scrub pass on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from the BIST probes.
    pub fn scrub_pass(&self) -> Result<ScrubPassReport, ResipeError> {
        self.inner.scrub_pass()
    }

    /// Starts the background scrub thread (idempotent).
    pub fn start(&self) {
        let mut handle = self.handle.lock().expect("scrub handle poisoned");
        if handle.is_some() {
            return;
        }
        self.inner.stop.store(false, Ordering::Release);
        let inner = Arc::clone(&self.inner);
        *handle = Some(
            std::thread::Builder::new()
                .name("resipe-scrub".into())
                .spawn(move || {
                    while !inner.stop.load(Ordering::Acquire) {
                        // BIST errors are engine-configuration problems
                        // that compile already validated; a background
                        // failure must not kill serving, so the pass is
                        // simply retried next interval.
                        let _ = inner.scrub_pass();
                        std::thread::park_timeout(inner.config.interval);
                    }
                })
                .expect("spawn scrub thread"),
        );
    }

    /// Stops the background scrub thread and waits for it to exit.
    /// Synchronous [`Scrubber::scrub_pass`] calls remain available.
    pub fn stop(&self) {
        let handle = {
            let mut guard = self.handle.lock().expect("scrub handle poisoned");
            guard.take()
        };
        if let Some(handle) = handle {
            self.inner.stop.store(true, Ordering::Release);
            handle.thread().unpark();
            handle.join().expect("join scrub thread");
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{CompileOptions, HardwareNetwork};
    use resipe_analog::units::Seconds;
    use resipe_nn::data::synth_digits;
    use resipe_nn::models;
    use resipe_nn::train::{Sgd, TrainConfig};
    use resipe_reram::aging::{AgingClock, AgingConfig};
    use resipe_reram::faults::RetentionDrift;

    fn compiled_mlp() -> (Arc<HardwareNetwork>, resipe_nn::tensor::Tensor) {
        let train = synth_digits(120, 1).unwrap();
        let mut net = models::mlp1(7).unwrap();
        Sgd::new(TrainConfig::new(3).with_learning_rate(0.1))
            .fit(&mut net, &train)
            .unwrap();
        let (calib, _) = train.batch(&(0..16).collect::<Vec<_>>()).unwrap();
        let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).unwrap();
        let (x, _) = train.batch(&[0, 1, 2, 3]).unwrap();
        (Arc::new(hw), x)
    }

    /// Drift deep enough to trip the scrub BIST on most columns.
    fn heavy_aging_step() -> resipe_reram::aging::AgingStep {
        let drift = RetentionDrift::new(Seconds(1e6)).unwrap();
        let cfg = AgingConfig::new(Seconds(100.0), drift).unwrap();
        let mut clock = AgingClock::new(cfg);
        clock.advance(20_000).unwrap()
    }

    /// A scrub policy with a BIST threshold low enough that heavy drift
    /// trips it (drift is a smooth relaxation, not a full-window flip).
    fn sensitive_config() -> ScrubConfig {
        let mut policy = RepairPolicy::full();
        policy.bist.cell_threshold = 0.05;
        ScrubConfig::new().with_policy(policy).with_seed(7)
    }

    #[test]
    fn healthy_network_scrubs_clean_without_swapping() {
        let (hw, _) = compiled_mlp();
        let scrubber = Scrubber::new(Arc::clone(&hw), sensitive_config()).unwrap();
        let report = scrubber.scrub_pass().unwrap();
        assert_eq!(report.repairs, 0);
        assert!(!report.swapped);
        assert!(report.tiles_scrubbed > 0);
        assert_eq!(hw.epoch(), 0, "no repair must publish no epoch");
        let stats = scrubber.stats();
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.repairs, 0);
        assert_eq!(stats.swaps, 0);
        assert_eq!(stats.degraded_nanos, 0);
    }

    #[test]
    fn scrub_repairs_aged_network_and_recovers_outputs() {
        let (hw, x) = compiled_mlp();
        let fresh = hw.forward(&x).unwrap();
        // The baseline is recorded on the fresh network, so a pass right
        // after attach finds nothing to do...
        let scrubber = Scrubber::new(Arc::clone(&hw), sensitive_config()).unwrap();
        let quiet = scrubber.scrub_pass().unwrap();
        assert_eq!(quiet.repairs, 0);

        // ...but aging past the baseline triggers repair.
        hw.age(&heavy_aging_step()).unwrap();
        let aged = hw.forward(&x).unwrap();
        assert_ne!(fresh, aged, "heavy drift must move the logits");
        let aged_err = resipe_nn::metrics::mean_absolute_error(&fresh, &aged).unwrap();

        let report = scrubber.scrub_pass().unwrap();
        assert!(report.repairs > 0, "regression past baseline must repair");
        assert!(report.swapped);
        assert_eq!(hw.epoch(), 2, "one aging + one scrub publish");
        assert_eq!(hw.plan_swaps(), 2);

        let scrubbed = hw.forward(&x).unwrap();
        let scrubbed_err = resipe_nn::metrics::mean_absolute_error(&fresh, &scrubbed).unwrap();
        assert!(
            scrubbed_err < aged_err,
            "scrub must pull outputs back toward fresh: {scrubbed_err} vs {aged_err}"
        );
        let stats = scrubber.stats();
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.swaps, 1);
        assert!(stats.degraded_nanos > 0);
    }

    #[test]
    fn scrub_repair_is_deterministic_per_seed() {
        let run = || {
            let (hw, x) = compiled_mlp();
            let scrubber =
                Scrubber::new(Arc::clone(&hw), sensitive_config().with_seed(99)).unwrap();
            hw.age(&heavy_aging_step()).unwrap();
            let report = scrubber.scrub_pass().unwrap();
            assert!(report.repairs > 0, "aging past baseline must repair");
            hw.forward(&x).unwrap()
        };
        assert_eq!(run(), run(), "same seed chain must repair bit-identically");
    }

    #[test]
    fn background_thread_starts_scrubs_and_stops() {
        let (hw, _) = compiled_mlp();
        let config = sensitive_config().with_interval(Duration::from_millis(1));
        let scrubber = Scrubber::new(Arc::clone(&hw), config).unwrap();
        scrubber.start();
        scrubber.start(); // idempotent
        let t0 = Instant::now();
        while scrubber.stats().passes == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(2));
        }
        scrubber.stop();
        let passes = scrubber.stats().passes;
        assert!(passes > 0, "background thread must complete passes");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(scrubber.stats().passes, passes, "stop must halt passes");
        scrubber.stop(); // idempotent
    }
}
