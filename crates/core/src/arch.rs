//! Architecture-level ReSiPE: many engines, whole networks.
//!
//! The paper generalizes the MAC circuit "to MVM operation at the
//! architectural level" (Sec. III-C) and sketches replication for
//! throughput (Fig. 6). This module provides the first-order accelerator
//! model on top of that: given a trained network and a pool of 32×32
//! ReSiPE engines, it derives
//!
//! * the **tile footprint** of every weight layer (row tiles of 32
//!   wordlines × column tiles of 16 logical outputs, since each logical
//!   output needs a differential pair of bitlines);
//! * the **MVM issue count** per inference (convolutions issue one MVM
//!   per output pixel per tile, dense layers one per tile);
//! * **latency** under engine time-multiplexing (each engine completes
//!   one MVM per two slices);
//! * **energy** per inference from the per-MVM [`crate::power`] model;
//! * **area** from the per-engine footprint.
//!
//! The model is deliberately weight-stationary and contention-free: a
//! layer's tiles are resident when enough engines exist, otherwise
//! engines are time-multiplexed round-robin — the same simplification
//! Fig. 6 makes when it replicates engines to fill an area budget.

use serde::{Deserialize, Serialize};

use resipe_analog::units::{Joules, Seconds, SquareMicrometers, Watts};
use resipe_nn::layers::Layer;
use resipe_nn::network::Network;

use crate::config::ResipeConfig;
use crate::error::ResipeError;
use crate::mapping::PAPER_TILE_ROWS;
use crate::power::{EnergyModel, PeripheralCosts};

/// Logical output columns per 32-wide array: each output needs a
/// differential bitline pair.
pub const LOGICAL_COLS_PER_TILE: usize = PAPER_TILE_ROWS / 2;

/// A pool of identical ReSiPE engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    engines: usize,
    config: ResipeConfig,
    energy: EnergyModel,
    engine_area: SquareMicrometers,
}

impl Accelerator {
    /// Per-engine die area at 65 nm (kept in sync with the Table II cost
    /// library).
    pub const ENGINE_AREA: SquareMicrometers = SquareMicrometers(5_900.0);

    /// Creates an accelerator with `engines` 32×32 ReSiPE engines at the
    /// paper's operating point.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] if `engines` is zero.
    pub fn new(engines: usize) -> Result<Accelerator, ResipeError> {
        Accelerator::with_config(engines, ResipeConfig::paper())
    }

    /// Creates an accelerator with an explicit engine configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::InvalidConfig`] if `engines` is zero or the
    /// configuration is invalid.
    pub fn with_config(engines: usize, config: ResipeConfig) -> Result<Accelerator, ResipeError> {
        if engines == 0 {
            return Err(ResipeError::InvalidConfig {
                reason: "accelerator needs at least one engine".into(),
            });
        }
        let energy = EnergyModel::new(
            config,
            PAPER_TILE_ROWS,
            PAPER_TILE_ROWS,
            PeripheralCosts::paper(),
        )?;
        Ok(Accelerator {
            engines,
            config,
            energy,
            engine_area: Accelerator::ENGINE_AREA,
        })
    }

    /// The number of engines.
    pub fn engines(&self) -> usize {
        self.engines
    }

    /// Total die area of the engine pool.
    pub fn area(&self) -> SquareMicrometers {
        SquareMicrometers(self.engines as f64 * self.engine_area.0)
    }

    /// Plans one network on this accelerator.
    ///
    /// `input_side` is the spatial side of the (square) input images,
    /// e.g. 28 for the digit task — needed to size convolution output
    /// maps.
    ///
    /// # Errors
    ///
    /// Returns [`ResipeError::UnsupportedLayer`] if the network contains a
    /// layer kind the mapper cannot lower, or
    /// [`ResipeError::InvalidConfig`] for a zero input size.
    pub fn plan(&self, net: &Network, input_side: usize) -> Result<InferencePlan, ResipeError> {
        if input_side == 0 {
            return Err(ResipeError::InvalidConfig {
                reason: "input side must be nonzero".into(),
            });
        }
        let mut side = input_side;
        let mut layers = Vec::new();
        for layer in net.layers() {
            match layer {
                Layer::Dense(d) => {
                    let row_tiles = d.in_features().div_ceil(PAPER_TILE_ROWS);
                    let col_tiles = d.out_features().div_ceil(LOGICAL_COLS_PER_TILE);
                    let tiles = row_tiles * col_tiles;
                    layers.push(LayerProfile {
                        name: format!("dense({}x{})", d.in_features(), d.out_features()),
                        tiles,
                        mvms_per_inference: tiles,
                    });
                }
                Layer::Conv2d(c) => {
                    let out_side = c.output_side(side);
                    let fan_in = c.in_channels() * c.kernel_size() * c.kernel_size();
                    let row_tiles = fan_in.div_ceil(PAPER_TILE_ROWS);
                    let col_tiles = c.out_channels().div_ceil(LOGICAL_COLS_PER_TILE);
                    let tiles = row_tiles * col_tiles;
                    layers.push(LayerProfile {
                        name: format!(
                            "conv({}-{}, k{}, {}x{})",
                            c.in_channels(),
                            c.out_channels(),
                            c.kernel_size(),
                            out_side,
                            out_side
                        ),
                        tiles,
                        mvms_per_inference: tiles * out_side * out_side,
                    });
                    side = out_side;
                }
                Layer::MaxPool2d(p) => {
                    side /= p.size();
                }
                Layer::AvgPool2d(p) => {
                    side /= p.size();
                }
                Layer::Relu(_) | Layer::Flatten(_) => {}
            }
        }
        Ok(InferencePlan {
            engines: self.engines,
            mvm_period: Seconds(2.0 * self.config.slice().0 + self.config.dt().0),
            mvm_energy: self.energy.mvm_energy().total(),
            layers,
        })
    }
}

/// One weight layer's hardware footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Human-readable layer description.
    pub name: String,
    /// Number of 32×32 crossbar tiles holding the layer's weights.
    pub tiles: usize,
    /// MVMs issued per inference (convolutions issue one per output
    /// pixel per tile).
    pub mvms_per_inference: usize,
}

/// A network planned onto an accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferencePlan {
    engines: usize,
    mvm_period: Seconds,
    mvm_energy: Joules,
    layers: Vec<LayerProfile>,
}

impl InferencePlan {
    /// The per-layer profiles.
    pub fn layers(&self) -> &[LayerProfile] {
        &self.layers
    }

    /// Total crossbar tiles needed to hold all weights resident.
    pub fn total_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.tiles).sum()
    }

    /// Total MVMs issued per inference.
    pub fn total_mvms(&self) -> usize {
        self.layers.iter().map(|l| l.mvms_per_inference).sum()
    }

    /// `true` if the engine pool can hold every tile resident
    /// (weight-stationary operation, no reprogramming between layers).
    pub fn weights_resident(&self) -> bool {
        self.engines >= self.total_tiles()
    }

    /// Single-inference latency under round-robin time multiplexing:
    /// each layer needs `ceil(mvms / engines)` MVM rounds, layers run in
    /// sequence (data dependence).
    pub fn latency(&self) -> Seconds {
        let rounds: usize = self
            .layers
            .iter()
            .map(|l| l.mvms_per_inference.div_ceil(self.engines))
            .sum();
        Seconds(rounds as f64 * self.mvm_period.0)
    }

    /// Steady-state throughput in inferences per second, engine-bound:
    /// `engines / (total_mvms · mvm_period)`.
    pub fn throughput(&self) -> f64 {
        self.engines as f64 / (self.total_mvms() as f64 * self.mvm_period.0)
    }

    /// Crossbar/periphery energy per inference.
    pub fn energy_per_inference(&self) -> Joules {
        Joules(self.total_mvms() as f64 * self.mvm_energy.0)
    }

    /// Average power at full utilization.
    pub fn power(&self) -> Watts {
        Joules(self.energy_per_inference().0 * self.throughput()) / Seconds(1.0)
    }

    /// A multi-line summary table.
    pub fn render(&self) -> String {
        let mut s = format!("{:<28} {:>8} {:>14}\n", "layer", "tiles", "MVMs/inference");
        for l in &self.layers {
            s.push_str(&format!(
                "{:<28} {:>8} {:>14}\n",
                l.name, l.tiles, l.mvms_per_inference
            ));
        }
        s.push_str(&format!(
            "total: {} tiles, {} MVMs; {} engines -> latency {:.2} us, \
             {:.1} inf/s, {:.2} nJ/inference\n",
            self.total_tiles(),
            self.total_mvms(),
            self.engines,
            self.latency().0 * 1e6,
            self.throughput(),
            self.energy_per_inference().0 * 1e9
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resipe_nn::models;

    #[test]
    fn mlp1_plan_counts() {
        let acc = Accelerator::new(16).unwrap();
        let net = models::mlp1(1).unwrap();
        let plan = acc.plan(&net, 28).unwrap();
        // 784 rows / 32 = 25 row tiles; 10 outputs / 16 = 1 col tile.
        assert_eq!(plan.total_tiles(), 25);
        assert_eq!(plan.total_mvms(), 25);
        assert!(!plan.weights_resident(), "16 engines < 25 tiles");
        // 25 MVMs on 16 engines: 2 rounds of 201 ns.
        assert!((plan.latency().as_nanos() - 402.0).abs() < 1e-6);
    }

    #[test]
    fn lenet_plan_includes_conv_pixels() {
        let acc = Accelerator::new(64).unwrap();
        let net = models::lenet(1).unwrap();
        let plan = acc.plan(&net, 28).unwrap();
        // First conv: fan_in 25 -> 1 row tile; 6 out ch -> 1 col tile;
        // 28x28 output pixels -> 784 MVMs.
        assert_eq!(plan.layers()[0].tiles, 1);
        assert_eq!(plan.layers()[0].mvms_per_inference, 784);
        // Second conv: fan_in 150 -> 5 row tiles, 16 ch -> 1 col tile,
        // 10x10 pixels -> 500 MVMs.
        assert_eq!(plan.layers()[1].tiles, 5);
        assert_eq!(plan.layers()[1].mvms_per_inference, 500);
        // Three dense layers follow.
        assert_eq!(plan.layers().len(), 5);
        assert!(plan.total_mvms() > 1300);
    }

    #[test]
    fn more_engines_cut_latency_and_raise_throughput() {
        let net = models::mlp2(1).unwrap();
        let small = Accelerator::new(4).unwrap().plan(&net, 28).unwrap();
        let large = Accelerator::new(64).unwrap().plan(&net, 28).unwrap();
        assert!(large.latency().0 < small.latency().0);
        assert!(large.throughput() > small.throughput());
        // Energy per inference is engine-count independent.
        assert_eq!(small.energy_per_inference(), large.energy_per_inference());
    }

    #[test]
    fn area_scales_with_engines() {
        let a = Accelerator::new(10).unwrap();
        assert_eq!(a.engines(), 10);
        assert!((a.area().0 - 59_000.0).abs() < 1e-9);
    }

    #[test]
    fn residency_threshold() {
        let net = models::mlp1(1).unwrap();
        let plan = Accelerator::new(25).unwrap().plan(&net, 28).unwrap();
        assert!(plan.weights_resident());
    }

    #[test]
    fn render_contains_totals() {
        let net = models::mlp2(1).unwrap();
        let plan = Accelerator::new(8).unwrap().plan(&net, 28).unwrap();
        let text = plan.render();
        assert!(text.contains("total:"));
        assert!(text.contains("dense(784x128)"));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Accelerator::new(0).is_err());
        let acc = Accelerator::new(1).unwrap();
        let net = models::mlp1(1).unwrap();
        assert!(acc.plan(&net, 0).is_err());
    }

    #[test]
    fn power_is_positive_and_bounded() {
        let net = models::mlp2(1).unwrap();
        let plan = Accelerator::new(32).unwrap().plan(&net, 28).unwrap();
        let p = plan.power();
        // 32 engines at ~0.48 mW each when fully busy.
        assert!(p.0 > 0.0);
        assert!(p.as_milli() < 32.0, "power {} mW", p.as_milli());
    }
}
