//! The batched/sequential determinism contract, end to end.
//!
//! `HardwareNetwork::forward_batch` must produce **bit-identical**
//! outputs to per-sample `forward` — for any thread count, under every
//! compile-time non-ideality — and the atomic MVM counter must advance
//! by the same total on both paths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::inference::{CompileOptions, FaultInjection, HardwareNetwork};
use resipe::mapping::TileMapper;
use resipe_nn::data::synth_digits;
use resipe_nn::layers::Dense;
use resipe_nn::models;
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;
use resipe_nn::train::{Sgd, TrainConfig};
use resipe_reram::variation::VariationModel;

/// Asserts bit-for-bit equality of two tensors (f32 `==` would also
/// accept `-0.0 == 0.0`; the contract is stricter).
fn assert_bit_identical(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {i}: {x:e} vs {y:e} differ in bits"
        );
    }
}

fn trained_mlp() -> (Network, Tensor, Tensor) {
    let train = synth_digits(120, 1).unwrap();
    let mut net = models::mlp1(7).unwrap();
    Sgd::new(TrainConfig::new(2).with_learning_rate(0.1))
        .fit(&mut net, &train)
        .unwrap();
    let (calib, _) = train.batch(&(0..16).collect::<Vec<_>>()).unwrap();
    let (x, _) = train.batch(&(0..12).collect::<Vec<_>>()).unwrap();
    (net, calib, x)
}

#[test]
fn batched_matches_sequential_clean() {
    let (net, calib, x) = trained_mlp();
    let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper()).unwrap();
    let seq = hw.forward(&x).unwrap();
    let bat = hw.forward_batch(&x).unwrap();
    assert_bit_identical(&seq, &bat);
}

#[test]
fn batched_matches_sequential_under_nonidealities() {
    let (net, calib, x) = trained_mlp();
    // The full non-ideality chain: process variation, clustered hard
    // faults, repair with spares, comparator offsets, time quantization.
    let opts = CompileOptions::paper()
        .with_mapper(TileMapper::paper().with_spare_cols(2))
        .with_variation(VariationModel::device_to_device(0.15).unwrap())
        .with_seed(42)
        .with_faults(FaultInjection::clustered(0.01, 4, 17))
        .with_repair(resipe::repair::RepairPolicy::full())
        .with_comparator_sigma(0.01)
        .with_time_quantization(resipe_analog::units::Seconds(1e-9));
    let hw = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
    let seq = hw.forward(&x).unwrap();
    let bat = hw.forward_batch(&x).unwrap();
    assert_bit_identical(&seq, &bat);
}

#[test]
fn batched_matches_sequential_across_thread_counts() {
    let (net, calib, x) = trained_mlp();
    let opts = CompileOptions::paper()
        .with_variation(VariationModel::device_to_device(0.10).unwrap())
        .with_seed(5);
    let hw = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
    let reference = hw.forward(&x).unwrap();
    for threads in [1, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let bat = pool.install(|| hw.forward_batch(&x)).unwrap();
        assert_bit_identical(&reference, &bat);
    }
}

#[test]
fn batched_matches_sequential_conv() {
    let train = synth_digits(40, 3).unwrap();
    let mut net = models::lenet(11).unwrap();
    Sgd::new(TrainConfig::new(1).with_learning_rate(0.05))
        .fit(&mut net, &train)
        .unwrap();
    let (calib, _) = train.batch(&[0, 1, 2, 3]).unwrap();
    let (x, _) = train.batch(&[0, 1, 2]).unwrap();
    let opts = CompileOptions::paper()
        .with_variation(VariationModel::device_to_device(0.05).unwrap())
        .with_seed(3);
    let hw = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
    let seq = hw.forward(&x).unwrap();
    let bat = hw.forward_batch(&x).unwrap();
    assert_bit_identical(&seq, &bat);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The atomic MVM counter advances by exactly the same total on the
    /// sequential and batched paths, for arbitrary small dense networks
    /// and batch sizes.
    #[test]
    fn mvm_counter_totals_match(
        in_features in 1usize..40,
        out_features in 1usize..6,
        batch in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new("prop");
        net.push(Dense::new(in_features, out_features, &mut rng));
        let calib = Tensor::from_vec(
            (0..2 * in_features).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
            &[2, in_features],
        ).expect("shape");
        let x = Tensor::from_vec(
            (0..batch * in_features).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
            &[batch, in_features],
        ).expect("shape");
        let hw = HardwareNetwork::compile(&net, &calib, &CompileOptions::paper())
            .expect("compile");
        hw.forward(&x).expect("forward");
        let sequential = hw.mvm_count();
        hw.reset_mvm_count();
        hw.forward_batch(&x).expect("forward_batch");
        let batched = hw.mvm_count();
        prop_assert_eq!(sequential, batched);
        prop_assert_eq!(batched as usize, batch * hw.dense_mvms_per_sample());
    }
}
