//! Per-backend equivalence obligations of the kernel backends, end to
//! end (the gate the `DESIGN.md` backend contract demands).
//!
//! * [`Backend::VectorF32`] must be **bit-identical** to the scalar
//!   reference — the same obligation the `block_equivalence` suite pins
//!   for blocking, here replayed with the lane kernel selected, across
//!   random shapes, batch sizes, block sizes, thread counts and the
//!   full non-ideality chain.
//! * [`Backend::FixedI32`] must stay within the documented per-column
//!   bound of [`BatchPlan::backend_error_bound`] — with and without
//!   time quantization — and be deterministic (same bits on every run).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::batch::BatchPlan;
use resipe::inference::{CompileOptions, FaultInjection, HardwareNetwork, RunOptions};
use resipe::kernel::Backend;
use resipe::mapping::{MappedWeights, SpikeEncoding, TileMapper};
use resipe::{ResipeConfig, ResipeEngine};
use resipe_analog::units::Seconds;
use resipe_nn::layers::{Conv2d, Dense};
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;
use resipe_reram::variation::VariationModel;

fn assert_bit_identical(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {i}: {x:e} vs {y:e} differ in bits"
        );
    }
}

/// The full non-ideality chain (mirrors `block_equivalence`).
fn nonideal_options(seed: u64) -> CompileOptions {
    CompileOptions::paper()
        .with_mapper(TileMapper::paper().with_spare_cols(2))
        .with_variation(VariationModel::device_to_device(0.15).unwrap())
        .with_seed(seed)
        .with_faults(FaultInjection::clustered(0.02, 4, seed ^ 0x5eed))
        .with_repair(resipe::repair::RepairPolicy::full())
        .with_comparator_sigma(0.01)
        .with_time_quantization(Seconds(1e-9))
}

/// Sparse activations in `[0, 1]` — exact zeros exercise the encode
/// zero-skip path the vector backend replaces with dense `±0.0` adds.
fn sparse_input(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.4 {
                    0.0
                } else {
                    rng.gen_range(0.0..1.0f32)
                }
            })
            .collect(),
        shape,
    )
    .expect("shape")
}

/// One mapped layer carrying the full non-ideality chain, built
/// directly for plan-level bound checks.
fn nonideal_mapped(rows: usize, cols: usize, seed: u64, quantized: bool) -> MappedWeights {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let model = VariationModel::device_to_device(0.12).unwrap();
    let mapped = TileMapper::paper()
        .with_spare_cols(2)
        .map(&weights, rows, cols)
        .expect("map")
        .with_faults(0.02, 4, seed ^ 0xfau64)
        .expect("faults")
        .perturbed(&model, seed ^ 0x7)
        .with_comparator_offsets(0.01, seed ^ 0x11);
    if quantized {
        mapped.with_time_quantization(Seconds(1e-9))
    } else {
        mapped
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The lane kernel equals the per-sample reference path to the bit —
    /// for any shape, batch, block size and thread count, under the full
    /// non-ideality chain. This is the `block_equivalence` obligation
    /// replayed with `Backend::VectorF32` selected.
    #[test]
    fn vector_backend_is_bit_identical_to_per_sample(
        in_features in 1usize..60,
        out_features in 1usize..8,
        batch in 1usize..12,
        block_idx in 0usize..7,
        threads_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let block = [1usize, 2, 3, 5, 8, 32, 64][block_idx];
        let threads = [1usize, 2, 4][threads_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new("backend-prop");
        net.push(Dense::new(in_features, out_features, &mut rng));
        let calib = sparse_input(&mut rng, &[2, in_features]);
        let x = sparse_input(&mut rng, &[batch, in_features]);
        let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(seed))
            .expect("compile");
        let reference = hw.run(&x, &RunOptions::per_sample()).expect("reference").outputs;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let vectored = pool
            .install(|| {
                hw.run(
                    &x,
                    &RunOptions::planned()
                        .with_block_size(block)
                        .with_backend(Backend::VectorF32),
                )
            })
            .expect("vector run")
            .outputs;
        for (a, b) in reference.data().iter().zip(vectored.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every fixed-point output stays within the documented per-column
    /// bound of the scalar reference — across shapes, block sizes, the
    /// full non-ideality chain, with and without time quantization.
    #[test]
    fn fixed_backend_stays_within_documented_bound(
        rows in 1usize..70,
        cols in 1usize..7,
        batch in 1usize..10,
        block_idx in 0usize..4,
        quantized in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let block = [1usize, 3, 8, 64][block_idx];
        let mapped = nonideal_mapped(rows, cols, seed, quantized);
        let engine = ResipeEngine::new(ResipeConfig::paper());
        let plan = BatchPlan::new(&engine, &mapped, SpikeEncoding::PassThrough);
        let bound = plan.backend_error_bound(Backend::FixedI32);
        prop_assert!(bound.iter().all(|b| b.is_finite()));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let a: Vec<f64> = (0..batch * rows)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.4 {
                    0.0
                } else {
                    rng.gen_range(0.0..1.0)
                }
            })
            .collect();
        let mut scratch = plan.scratch();
        let mut fixed = vec![f64::NAN; batch * cols];
        for start in (0..batch).step_by(block) {
            let b = block.min(batch - start);
            plan.forward_block_with(
                Backend::FixedI32,
                &a[start * rows..(start + b) * rows],
                b,
                &mut fixed[start * cols..(start + b) * cols],
                &mut scratch,
            )
            .expect("fixed block");
        }
        for b in 0..batch {
            let exact = plan
                .forward_one(&a[b * rows..(b + 1) * rows], &mut scratch)
                .expect("reference");
            for (j, (x, f)) in exact.iter().zip(&fixed[b * cols..(b + 1) * cols]).enumerate() {
                let dev = (x - f).abs();
                prop_assert!(
                    dev <= bound[j],
                    "sample {b} column {j}: |{x:e} - {f:e}| = {dev:e} > bound {b_j:e}",
                    b_j = bound[j]
                );
            }
        }
    }
}

/// A two-crossbar-layer network (with an interleaved digital ReLU) run
/// on the fixed-point backend stays a faithful approximation of the
/// scalar reference end to end, and is deterministic to the bit.
#[test]
fn fixed_backend_network_run_is_close_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(97);
    let mut net = Network::new("fixed-two-layer");
    net.push(Dense::new(33, 9, &mut rng));
    net.push(resipe_nn::layers::Relu::new());
    net.push(Dense::new(9, 4, &mut rng));
    let calib = sparse_input(&mut rng, &[4, 33]);
    let x = sparse_input(&mut rng, &[11, 33]);
    let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(7)).expect("compile");
    let reference = hw
        .run(&x, &RunOptions::per_sample())
        .expect("reference")
        .outputs;
    let opts = RunOptions::planned().with_backend(Backend::FixedI32);
    let fixed = hw.run(&x, &opts).expect("fixed run").outputs;
    let again = hw.run(&x, &opts).expect("fixed rerun").outputs;
    assert_bit_identical(&fixed, &again);
    let scale: f32 = reference
        .data()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-3);
    for (i, (r, f)) in reference.data().iter().zip(fixed.data()).enumerate() {
        assert!(f.is_finite(), "element {i} not finite");
        let dev = (r - f).abs();
        // ~15-bit input quantization per crossbar layer leaves the
        // network output within a fraction of a percent of full scale;
        // 1% is a loose, deterministic ceiling.
        assert!(
            dev <= 0.01 * scale,
            "element {i}: |{r:e} - {f:e}| = {dev:e} exceeds 1% of scale {scale:e}"
        );
    }
}

/// The convolution arm routes pixel blocks through the selected
/// backend too: the lane kernel must stay bit-identical there.
#[test]
fn conv_layer_vector_backend_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(55);
    let mut net = Network::new("conv-backend");
    net.push(Conv2d::new(1, 3, 3, 1, &mut rng));
    let calib = sparse_input(&mut rng, &[2, 1, 6, 6]);
    let x = sparse_input(&mut rng, &[3, 1, 6, 6]);
    let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(3)).expect("compile");
    let reference = hw.run(&x, &RunOptions::per_sample()).expect("reference");
    for block in [1usize, 5, 32] {
        let vectored = hw
            .run(
                &x,
                &RunOptions::planned()
                    .with_block_size(block)
                    .with_backend(Backend::VectorF32),
            )
            .expect("vector conv run");
        assert_bit_identical(&reference.outputs, &vectored.outputs);
    }
}

/// `PerSample` mode ignores the backend selector — it *is* the scalar
/// reference by definition.
#[test]
fn per_sample_mode_ignores_backend() {
    let mut rng = StdRng::seed_from_u64(61);
    let mut net = Network::new("per-sample-backend");
    net.push(Dense::new(20, 3, &mut rng));
    let calib = sparse_input(&mut rng, &[2, 20]);
    let x = sparse_input(&mut rng, &[5, 20]);
    let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(13)).expect("compile");
    let reference = hw.run(&x, &RunOptions::per_sample()).expect("reference");
    let fixed = hw
        .run(
            &x,
            &RunOptions::per_sample().with_backend(Backend::FixedI32),
        )
        .expect("per-sample fixed");
    assert_bit_identical(&reference.outputs, &fixed.outputs);
}
