//! Bit-identity of the cache-blocked kernel layer, end to end.
//!
//! The blocked planned path (`BatchPlan::forward_block` under
//! `RunOptions::with_block_size`) re-orders *memory traffic* — tile
//! conductances are streamed once per sample block instead of once per
//! sample — but must never re-order a floating-point accumulation. These
//! tests pin that contract across random layer shapes, batch sizes,
//! block sizes, rayon thread counts, and the full non-ideality chain
//! (process variation, hard faults, the repair ladder, comparator
//! offsets and time quantization): the outputs must equal the
//! per-sample reference path to the last bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::inference::{CompileOptions, FaultInjection, HardwareNetwork, RunOptions};
use resipe::mapping::TileMapper;
use resipe_analog::units::Seconds;
use resipe_nn::layers::{Conv2d, Dense};
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;
use resipe_reram::variation::VariationModel;

fn assert_bit_identical(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {i}: {x:e} vs {y:e} differ in bits"
        );
    }
}

/// The full non-ideality chain — faults and repair included — so the
/// blocked kernel's equivalence claim covers remapped spare columns,
/// permuted wordlines and every readout non-ideality at once.
fn nonideal_options(seed: u64) -> CompileOptions {
    CompileOptions::paper()
        .with_mapper(TileMapper::paper().with_spare_cols(2))
        .with_variation(VariationModel::device_to_device(0.15).unwrap())
        .with_seed(seed)
        .with_faults(FaultInjection::clustered(0.02, 4, seed ^ 0x5eed))
        .with_repair(resipe::repair::RepairPolicy::full())
        .with_comparator_sigma(0.01)
        .with_time_quantization(Seconds(1e-9))
}

/// Sparse activations in `[0, 1]` — exact zeros exercise the encode
/// zero-skip path whose bit-exactness the kernel relies on.
fn sparse_input(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.4 {
                    0.0
                } else {
                    rng.gen_range(0.0..1.0f32)
                }
            })
            .collect(),
        shape,
    )
    .expect("shape")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary dense layers under the full non-ideality chain, the
    /// blocked planned path equals the per-sample reference path to the
    /// bit — for any block size, any thread count, and the auto-sized
    /// block — and the telemetry MVM counter stays pinned to the static
    /// figure.
    #[test]
    fn blocked_planned_path_is_bit_identical_to_per_sample(
        in_features in 1usize..60,
        out_features in 1usize..8,
        batch in 1usize..12,
        block_idx in 0usize..7,
        threads_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let block = [1usize, 2, 3, 5, 8, 32, 64][block_idx];
        let threads = [1usize, 2, 4][threads_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new("block-prop");
        net.push(Dense::new(in_features, out_features, &mut rng));
        let calib = sparse_input(&mut rng, &[2, in_features]);
        let x = sparse_input(&mut rng, &[batch, in_features]);
        let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(seed))
            .expect("compile");
        let reference = hw.run(&x, &RunOptions::per_sample()).expect("reference").outputs;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let pinned = pool
            .install(|| hw.run(&x, &RunOptions::planned().with_block_size(block)))
            .expect("blocked run")
            .outputs;
        let auto = pool
            .install(|| hw.run(&x, &RunOptions::planned()))
            .expect("auto-blocked run")
            .outputs;
        for (a, b) in reference.data().iter().zip(pinned.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in reference.data().iter().zip(auto.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(
            hw.mvm_count(),
            3 * (batch * hw.dense_mvms_per_sample()) as u64,
            "three runs must issue exactly three batches of MVMs"
        );
    }
}

/// A deeper network (two crossbar layers with an interleaved digital
/// ReLU) stays bit-identical under blocking, including when the block
/// does not divide the batch.
#[test]
fn two_layer_network_blocks_bit_identically() {
    let mut rng = StdRng::seed_from_u64(91);
    let mut net = Network::new("two-layer");
    net.push(Dense::new(33, 9, &mut rng));
    net.push(resipe_nn::layers::Relu::new());
    net.push(Dense::new(9, 4, &mut rng));
    let calib = sparse_input(&mut rng, &[4, 33]);
    let x = sparse_input(&mut rng, &[11, 33]);
    let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(7)).expect("compile");
    let reference = hw.run(&x, &RunOptions::per_sample()).expect("reference");
    for block in [1usize, 2, 4, 7, 64] {
        let blocked = hw
            .run(&x, &RunOptions::planned().with_block_size(block))
            .expect("blocked");
        assert_bit_identical(&reference.outputs, &blocked.outputs);
    }
}

/// The convolution arm routes every output pixel through the blocked
/// kernel; its planned path must match the per-sample reference too.
#[test]
fn conv_layer_blocks_bit_identically() {
    let mut rng = StdRng::seed_from_u64(55);
    let mut net = Network::new("conv-block");
    net.push(Conv2d::new(1, 3, 3, 1, &mut rng));
    let calib = sparse_input(&mut rng, &[2, 1, 6, 6]);
    let x = sparse_input(&mut rng, &[3, 1, 6, 6]);
    let hw = HardwareNetwork::compile(&net, &calib, &nonideal_options(3)).expect("compile");
    let reference = hw.run(&x, &RunOptions::per_sample()).expect("reference");
    for block in [1usize, 5, 32] {
        let blocked = hw
            .run(&x, &RunOptions::planned().with_block_size(block))
            .expect("blocked");
        assert_bit_identical(&reference.outputs, &blocked.outputs);
    }
}
