//! Epoch-swap consistency under concurrent traffic.
//!
//! The scrubber publishes repaired crossbar state by swapping the
//! network's epoch while requests are in flight. The contract these
//! tests pin: a request sees **exactly one** epoch — every output is
//! bit-identical to either the pre-repair network or the post-repair
//! network, never a torn mix of repaired and unrepaired layers.
//!
//! The references are precomputable because the whole damage/repair
//! chain is deterministic: aging is a pure function of the clock seed
//! and served-request count, and a scrub pass is a pure function of
//! `(scrub seed, pass index, published state)`. A bit-identical mirror
//! network aged on the same schedule and scrubbed with the same seed
//! lands in the bit-identical repaired state — so the mirror yields the
//! exact pre- and post-swap outputs the live threads must observe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::inference::{CompileOptions, HardwareNetwork, RunOptions};
use resipe::repair::RepairPolicy;
use resipe::scrub::{ScrubConfig, Scrubber};
use resipe_analog::units::Seconds;
use resipe_nn::layers::{Dense, Relu};
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;
use resipe_reram::aging::{AgingClock, AgingConfig, AgingStep};
use resipe_reram::faults::RetentionDrift;

fn random_input(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let len = shape.iter().product();
    Tensor::from_vec(
        (0..len).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
        shape,
    )
    .expect("shape")
}

/// Retention drift heavy enough (2τ elapsed) to regress every tile past
/// a 0.05-swing BIST threshold, so the scrub pass genuinely repairs and
/// swaps rather than passing quietly.
fn heavy_aging_step(seed: u64) -> AgingStep {
    let drift = RetentionDrift::new(Seconds(1e6)).expect("drift");
    let config = AgingConfig::new(Seconds(100.0), drift)
        .expect("aging config")
        .with_seed(seed);
    AgingClock::new(config)
        .advance(20_000)
        .expect("nonzero advance")
}

/// Scrub policy sharp enough to see smooth drift (the 0.4 default only
/// trips on hard faults).
fn sensitive_scrub(seed: u64) -> ScrubConfig {
    let mut policy = RepairPolicy::full();
    policy.bist.cell_threshold = 0.05;
    ScrubConfig::new().with_policy(policy).with_seed(seed)
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Builds the live network and its bit-identical mirror, ages both on
/// the same schedule, and returns `(live hw, live scrubber, pre-repair
/// outputs, post-repair outputs)` for the given probe inputs.
#[allow(clippy::type_complexity)]
fn aged_pair(
    net: &Network,
    calib: &Tensor,
    options: &CompileOptions,
    scrub_seed: u64,
    aging_seed: u64,
    probes: &[(Tensor, RunOptions)],
) -> (Arc<HardwareNetwork>, Scrubber, Vec<Tensor>, Vec<Tensor>) {
    let hw = Arc::new(HardwareNetwork::compile(net, calib, options).expect("compile"));
    let mirror = Arc::new(hw.as_ref().clone());
    // Both scrubbers attach while fresh so their health baselines (and
    // pass indices) match; both networks then age identically.
    let scrubber = Scrubber::new(Arc::clone(&hw), sensitive_scrub(scrub_seed)).expect("scrubber");
    let mirror_scrubber =
        Scrubber::new(Arc::clone(&mirror), sensitive_scrub(scrub_seed)).expect("mirror scrubber");
    let step = heavy_aging_step(aging_seed);
    hw.age(&step).expect("age live");
    mirror.age(&step).expect("age mirror");

    let pre: Vec<Tensor> = probes
        .iter()
        .map(|(x, opts)| mirror.run(x, opts).expect("pre reference").outputs)
        .collect();
    let report = mirror_scrubber.scrub_pass().expect("mirror scrub");
    assert!(report.repairs > 0, "aging must regress past the baseline");
    assert!(report.swapped, "mirror repair must publish a new epoch");
    let post: Vec<Tensor> = probes
        .iter()
        .map(|(x, opts)| mirror.run(x, opts).expect("post reference").outputs)
        .collect();
    (hw, scrubber, pre, post)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Reader threads hammer the per-sample and batched-planned paths
    /// while the scrubber repairs and swaps underneath them: every
    /// output observed is bit-identical to the pre-repair or the
    /// post-repair reference, and once the swap lands, reads settle on
    /// the post-repair bits.
    #[test]
    fn concurrent_swap_yields_pre_or_post_bits_never_torn(
        in_features in 8usize..40,
        out_features in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new("hotswap-prop");
        net.push(Dense::new(in_features, out_features, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(out_features, 3, &mut rng));
        let calib = random_input(&mut rng, &[4, in_features]);
        let probes = vec![
            (random_input(&mut rng, &[1, in_features]), RunOptions::per_sample()),
            (random_input(&mut rng, &[5, in_features]), RunOptions::planned()),
        ];
        let options = CompileOptions::paper().with_seed(seed);
        let (hw, scrubber, pre, post) =
            aged_pair(&net, &calib, &options, seed ^ 0x5c47b, seed, &probes);

        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..3usize {
            let hw = Arc::clone(&hw);
            let stop = Arc::clone(&stop);
            let probes = probes.clone();
            let pre = pre.clone();
            let post = post.clone();
            readers.push(thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) || reads == 0 {
                    let which = (reads as usize + t) % probes.len();
                    let (x, opts) = &probes[which];
                    let out = hw.run(x, opts).expect("live run").outputs;
                    assert!(
                        bits_equal(&out, &pre[which]) || bits_equal(&out, &post[which]),
                        "thread {t} observed an output matching neither the \
                         pre- nor the post-repair epoch (torn swap?)"
                    );
                    reads += 1;
                }
                reads
            }));
        }

        // Repair and swap while the readers are mid-flight.
        let report = scrubber.scrub_pass().expect("live scrub");
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let reads = r.join().expect("reader thread");
            prop_assert!(reads > 0, "reader made no observations");
        }
        prop_assert!(report.repairs > 0);
        prop_assert!(report.swapped);

        // After the swap, the live network answers with exactly the
        // mirror's post-repair bits — deterministic repair means the
        // hot path converged on a precomputable state.
        for (i, (x, opts)) in probes.iter().enumerate() {
            let settled = hw.run(x, opts).expect("settled run").outputs;
            prop_assert!(
                bits_equal(&settled, &post[i]),
                "post-swap output diverged from the deterministic repair reference"
            );
        }
    }
}

/// The background thread flavor of the same contract: readers hammer
/// while the scrub loop runs on its own cadence; every observed output
/// belongs to a published epoch.
#[test]
fn background_scrub_thread_never_tears_outputs() {
    let mut rng = StdRng::seed_from_u64(1204);
    let mut net = Network::new("hotswap-bg");
    net.push(Dense::new(24, 6, &mut rng));
    let calib = random_input(&mut rng, &[4, 24]);
    let probes = vec![
        (random_input(&mut rng, &[1, 24]), RunOptions::per_sample()),
        (random_input(&mut rng, &[3, 24]), RunOptions::planned()),
    ];
    let options = CompileOptions::paper().with_seed(11);
    let (hw, scrubber, pre, post) = aged_pair(&net, &calib, &options, 31, 17, &probes);

    scrubber.start();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut saw_post = false;
    let mut reads = 0usize;
    while !saw_post {
        assert!(
            std::time::Instant::now() < deadline,
            "background scrubber never published the repaired epoch"
        );
        let which = reads % probes.len();
        let (x, opts) = &probes[which];
        let out = hw.run(x, opts).expect("live run").outputs;
        assert!(
            bits_equal(&out, &pre[which]) || bits_equal(&out, &post[which]),
            "observed an output matching neither published epoch"
        );
        saw_post = bits_equal(&out, &post[which]);
        reads += 1;
    }
    scrubber.stop();
    assert!(scrubber.stats().repairs > 0);
}
