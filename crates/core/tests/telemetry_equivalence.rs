//! The telemetry observability contract, end to end.
//!
//! Recording must be a pure observer: enabling telemetry must not change
//! a single output bit on either execution path, the unified
//! [`HardwareNetwork::run`] API must be bit-identical to the legacy
//! `forward`/`forward_batch` wrappers, and the counters it reports must
//! agree exactly with the network's static `dense_mvms_per_sample` /
//! `crossbar_layer_count` figures. Invalid [`CompileOptions`] must fail
//! with [`ResipeError::InvalidOptions`] instead of panicking.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use resipe::inference::{CompileOptions, FaultInjection, HardwareNetwork, RunOptions};
use resipe::mapping::TileMapper;
use resipe::telemetry::Telemetry;
use resipe::ResipeError;
use resipe_analog::units::Seconds;
use resipe_nn::data::synth_digits;
use resipe_nn::layers::Dense;
use resipe_nn::models;
use resipe_nn::network::Network;
use resipe_nn::tensor::Tensor;
use resipe_nn::train::{Sgd, TrainConfig};
use resipe_reram::variation::VariationModel;

fn assert_bit_identical(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {i}: {x:e} vs {y:e} differ in bits"
        );
    }
}

fn trained_mlp() -> (Network, Tensor, Tensor) {
    let train = synth_digits(120, 1).unwrap();
    let mut net = models::mlp1(7).unwrap();
    Sgd::new(TrainConfig::new(2).with_learning_rate(0.1))
        .fit(&mut net, &train)
        .unwrap();
    let (calib, _) = train.batch(&(0..16).collect::<Vec<_>>()).unwrap();
    let (x, _) = train.batch(&(0..12).collect::<Vec<_>>()).unwrap();
    (net, calib, x)
}

/// The full non-ideality chain, so the equivalence claims cover the
/// repair ladder, comparator offsets and quantization — not just the
/// clean path.
fn nonideal_options() -> CompileOptions {
    CompileOptions::paper()
        .with_mapper(TileMapper::paper().with_spare_cols(2))
        .with_variation(VariationModel::device_to_device(0.15).unwrap())
        .with_seed(42)
        .with_faults(FaultInjection::clustered(0.01, 4, 17))
        .with_repair(resipe::repair::RepairPolicy::full())
        .with_comparator_sigma(0.01)
        .with_time_quantization(Seconds(1e-9))
}

#[test]
fn enabled_telemetry_is_bit_identical_to_disabled() {
    let (net, calib, x) = trained_mlp();
    let opts = nonideal_options();
    let plain = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
    let traced =
        HardwareNetwork::compile_with_telemetry(&net, &calib, &opts, Telemetry::enabled()).unwrap();
    assert!(!plain.telemetry().is_enabled());
    assert!(traced.telemetry().is_enabled());
    // Same compile seed, telemetry never feeds the RNG: outputs must not
    // differ in a single bit, on either execution path.
    assert_bit_identical(&plain.forward(&x).unwrap(), &traced.forward(&x).unwrap());
    assert_bit_identical(
        &plain.forward_batch(&x).unwrap(),
        &traced.forward_batch(&x).unwrap(),
    );
}

#[test]
fn run_matches_legacy_wrappers_bit_identically() {
    let (net, calib, x) = trained_mlp();
    let hw = HardwareNetwork::compile_with_telemetry(
        &net,
        &calib,
        &nonideal_options(),
        Telemetry::enabled(),
    )
    .unwrap();
    let seq = hw.run(&x, &RunOptions::per_sample()).unwrap();
    let bat = hw.run(&x, &RunOptions::planned()).unwrap();
    assert_bit_identical(&seq.outputs, &hw.forward(&x).unwrap());
    assert_bit_identical(&bat.outputs, &hw.forward_batch(&x).unwrap());
    // And the two modes agree with each other (the PR 2 contract).
    assert_bit_identical(&seq.outputs, &bat.outputs);
}

#[test]
fn sequential_and_planned_report_identical_counters() {
    let (net, calib, x) = trained_mlp();
    let samples = x.shape()[0] as u64;
    let opts = nonideal_options();

    let hw = HardwareNetwork::compile(&net, &calib, &opts).unwrap();
    let mut seq_hw = hw.clone();
    seq_hw.set_telemetry(Telemetry::enabled());
    let seq = seq_hw.run(&x, &RunOptions::per_sample()).unwrap().telemetry;

    let mut bat_hw = hw.clone();
    bat_hw.set_telemetry(Telemetry::enabled());
    let bat = bat_hw.run(&x, &RunOptions::planned()).unwrap().telemetry;

    let expected_mvms = samples * hw.dense_mvms_per_sample() as u64;
    assert_eq!(seq.counters.mvms, expected_mvms);
    assert_eq!(bat.counters.mvms, expected_mvms);
    assert_eq!(seq.layers.len(), hw.crossbar_layer_count());
    assert_eq!(bat.layers.len(), hw.crossbar_layer_count());
    for (s, b) in seq.layers.iter().zip(&bat.layers) {
        assert_eq!(s.layer, b.layer);
        assert_eq!(s.calls, samples, "layer {} calls", s.layer);
        assert_eq!(s.mvms, b.mvms, "layer {} MVM totals", s.layer);
    }
    // Per-layer MVMs sum to the global counter on both paths.
    let sum: u64 = seq.layers.iter().map(|l| l.mvms).sum();
    assert_eq!(sum, expected_mvms);
    // The planned path also populates the spike-time / saturation
    // histograms: one decode per differential column pair per tile.
    assert!(bat.t_out.total() > 0, "t_out histogram must be populated");
    assert_eq!(bat.t_out.total(), bat.v_out.total());
}

#[test]
fn run_snapshot_carries_spans_and_compile_counters() {
    let (net, calib, x) = trained_mlp();
    let telemetry = Telemetry::enabled();
    let hw = HardwareNetwork::compile_with_telemetry(
        &net,
        &calib,
        &nonideal_options(),
        telemetry.clone(),
    )
    .unwrap();
    let snap = hw.run(&x, &RunOptions::planned()).unwrap().telemetry;
    assert!(snap.enabled);
    assert!(snap.span("compile").is_some(), "compile span missing");
    assert!(snap.span("forward").is_some(), "forward span missing");
    assert!(
        snap.spans
            .iter()
            .any(|s| s.path.starts_with("forward/layer") && s.path.ends_with("/crossbar")),
        "per-stage forward span missing"
    );
    assert!(
        snap.spans.iter().any(|s| s.path.ends_with("/repair")),
        "repair spans missing under compile"
    );
    assert!(
        snap.counters.repair_pulses > 0,
        "faulty compile must record repair pulses"
    );
    let (s1, xb, s2) = snap.stage_nanos();
    assert!(s1 > 0 && xb > 0 && s2 > 0, "stage timings must be nonzero");
}

#[test]
fn reset_clears_the_sink_between_runs() {
    let (net, calib, x) = trained_mlp();
    let telemetry = Telemetry::enabled();
    let hw = HardwareNetwork::compile_with_telemetry(
        &net,
        &calib,
        &CompileOptions::paper(),
        telemetry.clone(),
    )
    .unwrap();
    hw.run(&x, &RunOptions::planned()).unwrap();
    telemetry.reset();
    let snap = hw.run(&x, &RunOptions::planned()).unwrap().telemetry;
    let samples = x.shape()[0] as u64;
    assert_eq!(
        snap.counters.mvms,
        samples * hw.dense_mvms_per_sample() as u64,
        "reset must zero the counters, not accumulate across runs"
    );
    assert!(snap.span("compile").is_none(), "reset must drop old spans");
}

#[test]
fn invalid_options_fail_without_panicking() {
    let cases: Vec<(&str, CompileOptions)> = vec![
        (
            "negative fault rate",
            CompileOptions::paper().with_faults(FaultInjection::clustered(-0.5, 4, 1)),
        ),
        (
            "fault rate above one",
            CompileOptions::paper().with_faults(FaultInjection::clustered(1.5, 4, 1)),
        ),
        (
            "zero fault cluster",
            CompileOptions::paper().with_faults(FaultInjection::clustered(0.01, 0, 1)),
        ),
        (
            "drift without elapsed time",
            CompileOptions::paper().with_faults(FaultInjection::clustered(0.01, 4, 1).with_drift(
                resipe_reram::faults::RetentionDrift::new(Seconds(3600.0)).unwrap(),
                Seconds(0.0),
            )),
        ),
        (
            "negative comparator sigma",
            CompileOptions::paper().with_comparator_sigma(-0.1),
        ),
        (
            "NaN comparator sigma",
            CompileOptions::paper().with_comparator_sigma(f64::NAN),
        ),
        (
            "zero time quantization",
            CompileOptions::paper().with_time_quantization(Seconds(0.0)),
        ),
    ];
    // (A zero-row tile mapper is unconstructible through the public API:
    // `TileMapper::try_with_max_rows(0)` already fails with the same
    // error — covered in `mapping`'s unit tests.)
    let (net, calib, _) = trained_mlp();
    for (what, opts) in cases {
        let err = opts.build().expect_err(what);
        assert!(
            matches!(err, ResipeError::InvalidOptions { .. }),
            "{what}: expected InvalidOptions, got {err:?}"
        );
        // compile() performs the same validation up front.
        let err = HardwareNetwork::compile(&net, &calib, &opts).expect_err(what);
        assert!(matches!(err, ResipeError::InvalidOptions { .. }), "{what}");
    }
}

#[test]
fn build_accepts_valid_options() {
    nonideal_options().build().expect("valid options must pass");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For arbitrary small dense networks and batch sizes, the telemetry
    /// counters pin exactly to the static MVM arithmetic — and enabling
    /// them never perturbs the outputs.
    #[test]
    fn telemetry_counters_pin_to_static_figures(
        in_features in 1usize..40,
        out_features in 1usize..6,
        batch in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new("prop");
        net.push(Dense::new(in_features, out_features, &mut rng));
        let calib = Tensor::from_vec(
            (0..2 * in_features).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
            &[2, in_features],
        ).expect("shape");
        let x = Tensor::from_vec(
            (0..batch * in_features).map(|_| rng.gen_range(0.0..1.0f32)).collect(),
            &[batch, in_features],
        ).expect("shape");
        let opts = CompileOptions::paper();
        let plain = HardwareNetwork::compile(&net, &calib, &opts).expect("compile");
        let traced = HardwareNetwork::compile_with_telemetry(
            &net, &calib, &opts, Telemetry::enabled(),
        ).expect("compile");

        let expected = (batch * plain.dense_mvms_per_sample()) as u64;
        for mode in [RunOptions::per_sample(), RunOptions::planned()] {
            let p = plain.run(&x, &mode).expect("plain run");
            let t = traced.run(&x, &mode).expect("traced run");
            for (a, b) in p.outputs.data().iter().zip(t.outputs.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert!(!p.telemetry.enabled);
            prop_assert_eq!(t.telemetry.counters.mvms, expected);
            prop_assert_eq!(t.telemetry.layers.len(), traced.crossbar_layer_count());
            let span = t.telemetry.span("forward").expect("forward span");
            prop_assert!(span.count >= 1);
            traced.telemetry().reset();
        }
    }
}
