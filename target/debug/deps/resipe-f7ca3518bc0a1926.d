/root/repo/target/debug/deps/resipe-f7ca3518bc0a1926.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/circuit.rs crates/core/src/cog.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/gd.rs crates/core/src/inference.rs crates/core/src/mapping.rs crates/core/src/parasitics.rs crates/core/src/pipeline.rs crates/core/src/power.rs crates/core/src/repair.rs crates/core/src/spike.rs Cargo.toml

/root/repo/target/debug/deps/libresipe-f7ca3518bc0a1926.rmeta: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/circuit.rs crates/core/src/cog.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/gd.rs crates/core/src/inference.rs crates/core/src/mapping.rs crates/core/src/parasitics.rs crates/core/src/pipeline.rs crates/core/src/power.rs crates/core/src/repair.rs crates/core/src/spike.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/circuit.rs:
crates/core/src/cog.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/gd.rs:
crates/core/src/inference.rs:
crates/core/src/mapping.rs:
crates/core/src/parasitics.rs:
crates/core/src/pipeline.rs:
crates/core/src/power.rs:
crates/core/src/repair.rs:
crates/core/src/spike.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
