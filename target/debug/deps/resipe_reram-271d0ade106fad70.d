/root/repo/target/debug/deps/resipe_reram-271d0ade106fad70.d: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_reram-271d0ade106fad70.rmeta: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs Cargo.toml

crates/reram/src/lib.rs:
crates/reram/src/crossbar.rs:
crates/reram/src/device.rs:
crates/reram/src/error.rs:
crates/reram/src/faults.rs:
crates/reram/src/mapping.rs:
crates/reram/src/program.rs:
crates/reram/src/quantize.rs:
crates/reram/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
