/root/repo/target/debug/deps/fault_sweep-c817aafba95a1682.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-c817aafba95a1682: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
