/root/repo/target/debug/deps/fig5-52f677d664cc1f35.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-52f677d664cc1f35: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
