/root/repo/target/debug/deps/properties-6ea9e3ba0994898a.d: crates/nn/tests/properties.rs

/root/repo/target/debug/deps/properties-6ea9e3ba0994898a: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
