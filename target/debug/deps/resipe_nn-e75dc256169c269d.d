/root/repo/target/debug/deps/resipe_nn-e75dc256169c269d.d: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libresipe_nn-e75dc256169c269d.rlib: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libresipe_nn-e75dc256169c269d.rmeta: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/io.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/network.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
