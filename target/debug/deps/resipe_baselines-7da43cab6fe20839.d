/root/repo/target/debug/deps/resipe_baselines-7da43cab6fe20839.d: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

/root/repo/target/debug/deps/libresipe_baselines-7da43cab6fe20839.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

/root/repo/target/debug/deps/libresipe_baselines-7da43cab6fe20839.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparison.rs:
crates/baselines/src/components.rs:
crates/baselines/src/error.rs:
crates/baselines/src/inference.rs:
crates/baselines/src/level.rs:
crates/baselines/src/pwm.rs:
crates/baselines/src/rate.rs:
crates/baselines/src/temporal.rs:
crates/baselines/src/throughput.rs:
