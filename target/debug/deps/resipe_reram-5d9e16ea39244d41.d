/root/repo/target/debug/deps/resipe_reram-5d9e16ea39244d41.d: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

/root/repo/target/debug/deps/resipe_reram-5d9e16ea39244d41: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

crates/reram/src/lib.rs:
crates/reram/src/crossbar.rs:
crates/reram/src/device.rs:
crates/reram/src/error.rs:
crates/reram/src/faults.rs:
crates/reram/src/mapping.rs:
crates/reram/src/program.rs:
crates/reram/src/quantize.rs:
crates/reram/src/variation.rs:
