/root/repo/target/debug/deps/properties-540547a6f1c7a58f.d: crates/reram/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-540547a6f1c7a58f.rmeta: crates/reram/tests/properties.rs Cargo.toml

crates/reram/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
