/root/repo/target/debug/deps/resipe_baselines-96ef0079647271de.d: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_baselines-96ef0079647271de.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/comparison.rs:
crates/baselines/src/components.rs:
crates/baselines/src/error.rs:
crates/baselines/src/inference.rs:
crates/baselines/src/level.rs:
crates/baselines/src/pwm.rs:
crates/baselines/src/rate.rs:
crates/baselines/src/temporal.rs:
crates/baselines/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
