/root/repo/target/debug/deps/resipe_suite-82c94bc0cf8d484a.d: src/lib.rs

/root/repo/target/debug/deps/libresipe_suite-82c94bc0cf8d484a.rlib: src/lib.rs

/root/repo/target/debug/deps/libresipe_suite-82c94bc0cf8d484a.rmeta: src/lib.rs

src/lib.rs:
