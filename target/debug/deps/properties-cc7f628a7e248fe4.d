/root/repo/target/debug/deps/properties-cc7f628a7e248fe4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-cc7f628a7e248fe4: tests/properties.rs

tests/properties.rs:
