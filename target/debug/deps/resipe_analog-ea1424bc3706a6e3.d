/root/repo/target/debug/deps/resipe_analog-ea1424bc3706a6e3.d: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_analog-ea1424bc3706a6e3.rmeta: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs Cargo.toml

crates/analog/src/lib.rs:
crates/analog/src/error.rs:
crates/analog/src/linalg.rs:
crates/analog/src/netlist.rs:
crates/analog/src/transient.rs:
crates/analog/src/units.rs:
crates/analog/src/waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
