/root/repo/target/debug/deps/resipe_bench-31fec7b6b2861dd1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libresipe_bench-31fec7b6b2861dd1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libresipe_bench-31fec7b6b2861dd1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
