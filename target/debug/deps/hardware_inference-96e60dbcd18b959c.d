/root/repo/target/debug/deps/hardware_inference-96e60dbcd18b959c.d: tests/hardware_inference.rs

/root/repo/target/debug/deps/hardware_inference-96e60dbcd18b959c: tests/hardware_inference.rs

tests/hardware_inference.rs:
