/root/repo/target/debug/deps/engine_vs_circuit-140bbac6a86344b4.d: tests/engine_vs_circuit.rs Cargo.toml

/root/repo/target/debug/deps/libengine_vs_circuit-140bbac6a86344b4.rmeta: tests/engine_vs_circuit.rs Cargo.toml

tests/engine_vs_circuit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
