/root/repo/target/debug/deps/fig3-759c6397ce834758.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-759c6397ce834758: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
