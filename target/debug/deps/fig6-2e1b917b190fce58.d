/root/repo/target/debug/deps/fig6-2e1b917b190fce58.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-2e1b917b190fce58: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
