/root/repo/target/debug/deps/fig1-acc6fad8d069689b.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-acc6fad8d069689b: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
