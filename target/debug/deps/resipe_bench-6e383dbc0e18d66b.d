/root/repo/target/debug/deps/resipe_bench-6e383dbc0e18d66b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_bench-6e383dbc0e18d66b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
