/root/repo/target/debug/deps/resipe_suite-13651d8f50a2688f.d: src/lib.rs

/root/repo/target/debug/deps/resipe_suite-13651d8f50a2688f: src/lib.rs

src/lib.rs:
