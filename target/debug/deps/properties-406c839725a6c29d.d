/root/repo/target/debug/deps/properties-406c839725a6c29d.d: crates/analog/tests/properties.rs

/root/repo/target/debug/deps/properties-406c839725a6c29d: crates/analog/tests/properties.rs

crates/analog/tests/properties.rs:
