/root/repo/target/debug/deps/resipe_baselines-0c17d5d4d704e5ab.d: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

/root/repo/target/debug/deps/resipe_baselines-0c17d5d4d704e5ab: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparison.rs:
crates/baselines/src/components.rs:
crates/baselines/src/error.rs:
crates/baselines/src/inference.rs:
crates/baselines/src/level.rs:
crates/baselines/src/pwm.rs:
crates/baselines/src/rate.rs:
crates/baselines/src/temporal.rs:
crates/baselines/src/throughput.rs:
