/root/repo/target/debug/deps/encode-d4bfb4db3bc78d62.d: crates/bench/benches/encode.rs Cargo.toml

/root/repo/target/debug/deps/libencode-d4bfb4db3bc78d62.rmeta: crates/bench/benches/encode.rs Cargo.toml

crates/bench/benches/encode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
