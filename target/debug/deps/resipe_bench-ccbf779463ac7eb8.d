/root/repo/target/debug/deps/resipe_bench-ccbf779463ac7eb8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/resipe_bench-ccbf779463ac7eb8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
