/root/repo/target/debug/deps/fig7-b6f0d80d2b12c1d1.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-b6f0d80d2b12c1d1: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
