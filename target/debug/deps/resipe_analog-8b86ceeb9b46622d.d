/root/repo/target/debug/deps/resipe_analog-8b86ceeb9b46622d.d: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

/root/repo/target/debug/deps/resipe_analog-8b86ceeb9b46622d: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

crates/analog/src/lib.rs:
crates/analog/src/error.rs:
crates/analog/src/linalg.rs:
crates/analog/src/netlist.rs:
crates/analog/src/transient.rs:
crates/analog/src/units.rs:
crates/analog/src/waveform.rs:
