/root/repo/target/debug/deps/format_accuracy-cf3603fad9c76b1a.d: crates/bench/src/bin/format_accuracy.rs

/root/repo/target/debug/deps/format_accuracy-cf3603fad9c76b1a: crates/bench/src/bin/format_accuracy.rs

crates/bench/src/bin/format_accuracy.rs:
