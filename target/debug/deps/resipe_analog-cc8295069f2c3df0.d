/root/repo/target/debug/deps/resipe_analog-cc8295069f2c3df0.d: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_analog-cc8295069f2c3df0.rmeta: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs Cargo.toml

crates/analog/src/lib.rs:
crates/analog/src/error.rs:
crates/analog/src/linalg.rs:
crates/analog/src/netlist.rs:
crates/analog/src/transient.rs:
crates/analog/src/units.rs:
crates/analog/src/waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
