/root/repo/target/debug/deps/format_accuracy-d04f394c455ca373.d: crates/bench/src/bin/format_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libformat_accuracy-d04f394c455ca373.rmeta: crates/bench/src/bin/format_accuracy.rs Cargo.toml

crates/bench/src/bin/format_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
