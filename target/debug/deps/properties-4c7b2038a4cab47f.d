/root/repo/target/debug/deps/properties-4c7b2038a4cab47f.d: crates/analog/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4c7b2038a4cab47f.rmeta: crates/analog/tests/properties.rs Cargo.toml

crates/analog/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
