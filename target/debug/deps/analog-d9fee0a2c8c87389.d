/root/repo/target/debug/deps/analog-d9fee0a2c8c87389.d: crates/bench/benches/analog.rs Cargo.toml

/root/repo/target/debug/deps/libanalog-d9fee0a2c8c87389.rmeta: crates/bench/benches/analog.rs Cargo.toml

crates/bench/benches/analog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
