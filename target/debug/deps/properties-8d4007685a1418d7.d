/root/repo/target/debug/deps/properties-8d4007685a1418d7.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8d4007685a1418d7.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
