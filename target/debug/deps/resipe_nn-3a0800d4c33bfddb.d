/root/repo/target/debug/deps/resipe_nn-3a0800d4c33bfddb.d: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_nn-3a0800d4c33bfddb.rmeta: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/io.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/network.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
