/root/repo/target/debug/deps/resipe_suite-2075085ffb1b383d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_suite-2075085ffb1b383d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
