/root/repo/target/debug/deps/paper_claims-fb16cfc026ad4f24.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-fb16cfc026ad4f24: tests/paper_claims.rs

tests/paper_claims.rs:
