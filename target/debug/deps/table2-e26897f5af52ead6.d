/root/repo/target/debug/deps/table2-e26897f5af52ead6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e26897f5af52ead6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
