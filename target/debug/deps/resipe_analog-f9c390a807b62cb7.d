/root/repo/target/debug/deps/resipe_analog-f9c390a807b62cb7.d: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

/root/repo/target/debug/deps/libresipe_analog-f9c390a807b62cb7.rlib: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

/root/repo/target/debug/deps/libresipe_analog-f9c390a807b62cb7.rmeta: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

crates/analog/src/lib.rs:
crates/analog/src/error.rs:
crates/analog/src/linalg.rs:
crates/analog/src/netlist.rs:
crates/analog/src/transient.rs:
crates/analog/src/units.rs:
crates/analog/src/waveform.rs:
