/root/repo/target/debug/deps/resipe_bench-c08b54b3d9b8cec7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libresipe_bench-c08b54b3d9b8cec7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
