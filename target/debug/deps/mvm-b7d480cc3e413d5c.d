/root/repo/target/debug/deps/mvm-b7d480cc3e413d5c.d: crates/bench/benches/mvm.rs Cargo.toml

/root/repo/target/debug/deps/libmvm-b7d480cc3e413d5c.rmeta: crates/bench/benches/mvm.rs Cargo.toml

crates/bench/benches/mvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
