/root/repo/target/debug/deps/properties-cf83b80b4091b7ec.d: crates/nn/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cf83b80b4091b7ec.rmeta: crates/nn/tests/properties.rs Cargo.toml

crates/nn/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
