/root/repo/target/debug/deps/table1-3b5ba8adc5edaaf3.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3b5ba8adc5edaaf3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
