/root/repo/target/debug/deps/engine_vs_circuit-fd2e4e9ce67b62d6.d: tests/engine_vs_circuit.rs

/root/repo/target/debug/deps/engine_vs_circuit-fd2e4e9ce67b62d6: tests/engine_vs_circuit.rs

tests/engine_vs_circuit.rs:
