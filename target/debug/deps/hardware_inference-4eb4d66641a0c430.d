/root/repo/target/debug/deps/hardware_inference-4eb4d66641a0c430.d: tests/hardware_inference.rs Cargo.toml

/root/repo/target/debug/deps/libhardware_inference-4eb4d66641a0c430.rmeta: tests/hardware_inference.rs Cargo.toml

tests/hardware_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
