/root/repo/target/debug/deps/nn-bbeb21e0396c8e7f.d: crates/bench/benches/nn.rs Cargo.toml

/root/repo/target/debug/deps/libnn-bbeb21e0396c8e7f.rmeta: crates/bench/benches/nn.rs Cargo.toml

crates/bench/benches/nn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
