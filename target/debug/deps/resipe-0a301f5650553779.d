/root/repo/target/debug/deps/resipe-0a301f5650553779.d: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/circuit.rs crates/core/src/cog.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/gd.rs crates/core/src/inference.rs crates/core/src/mapping.rs crates/core/src/parasitics.rs crates/core/src/pipeline.rs crates/core/src/power.rs crates/core/src/repair.rs crates/core/src/spike.rs

/root/repo/target/debug/deps/resipe-0a301f5650553779: crates/core/src/lib.rs crates/core/src/arch.rs crates/core/src/circuit.rs crates/core/src/cog.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/gd.rs crates/core/src/inference.rs crates/core/src/mapping.rs crates/core/src/parasitics.rs crates/core/src/pipeline.rs crates/core/src/power.rs crates/core/src/repair.rs crates/core/src/spike.rs

crates/core/src/lib.rs:
crates/core/src/arch.rs:
crates/core/src/circuit.rs:
crates/core/src/cog.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/gd.rs:
crates/core/src/inference.rs:
crates/core/src/mapping.rs:
crates/core/src/parasitics.rs:
crates/core/src/pipeline.rs:
crates/core/src/power.rs:
crates/core/src/repair.rs:
crates/core/src/spike.rs:
