/root/repo/target/debug/deps/resipe_reram-7cfaacd7f7896b20.d: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

/root/repo/target/debug/deps/libresipe_reram-7cfaacd7f7896b20.rlib: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

/root/repo/target/debug/deps/libresipe_reram-7cfaacd7f7896b20.rmeta: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

crates/reram/src/lib.rs:
crates/reram/src/crossbar.rs:
crates/reram/src/device.rs:
crates/reram/src/error.rs:
crates/reram/src/faults.rs:
crates/reram/src/mapping.rs:
crates/reram/src/program.rs:
crates/reram/src/quantize.rs:
crates/reram/src/variation.rs:
