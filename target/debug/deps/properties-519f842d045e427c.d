/root/repo/target/debug/deps/properties-519f842d045e427c.d: crates/reram/tests/properties.rs

/root/repo/target/debug/deps/properties-519f842d045e427c: crates/reram/tests/properties.rs

crates/reram/tests/properties.rs:
