/root/repo/target/debug/examples/pretrained_models-7ca83ef6b60c488b.d: examples/pretrained_models.rs

/root/repo/target/debug/examples/pretrained_models-7ca83ef6b60c488b: examples/pretrained_models.rs

examples/pretrained_models.rs:
