/root/repo/target/debug/examples/quickstart-65772f8065d1863f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-65772f8065d1863f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
