/root/repo/target/debug/examples/characterize-3a01844d0fc5c61c.d: examples/characterize.rs

/root/repo/target/debug/examples/characterize-3a01844d0fc5c61c: examples/characterize.rs

examples/characterize.rs:
