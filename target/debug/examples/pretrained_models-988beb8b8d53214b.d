/root/repo/target/debug/examples/pretrained_models-988beb8b8d53214b.d: examples/pretrained_models.rs Cargo.toml

/root/repo/target/debug/examples/libpretrained_models-988beb8b8d53214b.rmeta: examples/pretrained_models.rs Cargo.toml

examples/pretrained_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
