/root/repo/target/debug/examples/digit_pipeline-7883f94eab48f8d6.d: examples/digit_pipeline.rs

/root/repo/target/debug/examples/digit_pipeline-7883f94eab48f8d6: examples/digit_pipeline.rs

examples/digit_pipeline.rs:
