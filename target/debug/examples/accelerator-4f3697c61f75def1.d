/root/repo/target/debug/examples/accelerator-4f3697c61f75def1.d: examples/accelerator.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator-4f3697c61f75def1.rmeta: examples/accelerator.rs Cargo.toml

examples/accelerator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
