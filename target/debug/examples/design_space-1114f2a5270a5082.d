/root/repo/target/debug/examples/design_space-1114f2a5270a5082.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-1114f2a5270a5082: examples/design_space.rs

examples/design_space.rs:
