/root/repo/target/debug/examples/accelerator-fccee6dc660a7f7b.d: examples/accelerator.rs

/root/repo/target/debug/examples/accelerator-fccee6dc660a7f7b: examples/accelerator.rs

examples/accelerator.rs:
