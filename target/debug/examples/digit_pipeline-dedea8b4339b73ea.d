/root/repo/target/debug/examples/digit_pipeline-dedea8b4339b73ea.d: examples/digit_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libdigit_pipeline-dedea8b4339b73ea.rmeta: examples/digit_pipeline.rs Cargo.toml

examples/digit_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
