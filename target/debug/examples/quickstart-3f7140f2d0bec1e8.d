/root/repo/target/debug/examples/quickstart-3f7140f2d0bec1e8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3f7140f2d0bec1e8: examples/quickstart.rs

examples/quickstart.rs:
