/root/repo/target/debug/examples/characterize-491d41d80c005bfa.d: examples/characterize.rs Cargo.toml

/root/repo/target/debug/examples/libcharacterize-491d41d80c005bfa.rmeta: examples/characterize.rs Cargo.toml

examples/characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
