/root/repo/target/release/deps/resipe_reram-d662fbbe1a706e09.d: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

/root/repo/target/release/deps/libresipe_reram-d662fbbe1a706e09.rlib: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

/root/repo/target/release/deps/libresipe_reram-d662fbbe1a706e09.rmeta: crates/reram/src/lib.rs crates/reram/src/crossbar.rs crates/reram/src/device.rs crates/reram/src/error.rs crates/reram/src/faults.rs crates/reram/src/mapping.rs crates/reram/src/program.rs crates/reram/src/quantize.rs crates/reram/src/variation.rs

crates/reram/src/lib.rs:
crates/reram/src/crossbar.rs:
crates/reram/src/device.rs:
crates/reram/src/error.rs:
crates/reram/src/faults.rs:
crates/reram/src/mapping.rs:
crates/reram/src/program.rs:
crates/reram/src/quantize.rs:
crates/reram/src/variation.rs:
