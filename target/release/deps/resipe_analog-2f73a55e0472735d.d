/root/repo/target/release/deps/resipe_analog-2f73a55e0472735d.d: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

/root/repo/target/release/deps/libresipe_analog-2f73a55e0472735d.rlib: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

/root/repo/target/release/deps/libresipe_analog-2f73a55e0472735d.rmeta: crates/analog/src/lib.rs crates/analog/src/error.rs crates/analog/src/linalg.rs crates/analog/src/netlist.rs crates/analog/src/transient.rs crates/analog/src/units.rs crates/analog/src/waveform.rs

crates/analog/src/lib.rs:
crates/analog/src/error.rs:
crates/analog/src/linalg.rs:
crates/analog/src/netlist.rs:
crates/analog/src/transient.rs:
crates/analog/src/units.rs:
crates/analog/src/waveform.rs:
