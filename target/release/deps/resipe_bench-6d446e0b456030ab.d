/root/repo/target/release/deps/resipe_bench-6d446e0b456030ab.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libresipe_bench-6d446e0b456030ab.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libresipe_bench-6d446e0b456030ab.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
