/root/repo/target/release/deps/resipe_suite-e59ef3077d54654a.d: src/lib.rs

/root/repo/target/release/deps/libresipe_suite-e59ef3077d54654a.rlib: src/lib.rs

/root/repo/target/release/deps/libresipe_suite-e59ef3077d54654a.rmeta: src/lib.rs

src/lib.rs:
