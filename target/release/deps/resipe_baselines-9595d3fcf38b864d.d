/root/repo/target/release/deps/resipe_baselines-9595d3fcf38b864d.d: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

/root/repo/target/release/deps/libresipe_baselines-9595d3fcf38b864d.rlib: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

/root/repo/target/release/deps/libresipe_baselines-9595d3fcf38b864d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/comparison.rs crates/baselines/src/components.rs crates/baselines/src/error.rs crates/baselines/src/inference.rs crates/baselines/src/level.rs crates/baselines/src/pwm.rs crates/baselines/src/rate.rs crates/baselines/src/temporal.rs crates/baselines/src/throughput.rs

crates/baselines/src/lib.rs:
crates/baselines/src/comparison.rs:
crates/baselines/src/components.rs:
crates/baselines/src/error.rs:
crates/baselines/src/inference.rs:
crates/baselines/src/level.rs:
crates/baselines/src/pwm.rs:
crates/baselines/src/rate.rs:
crates/baselines/src/temporal.rs:
crates/baselines/src/throughput.rs:
