/root/repo/target/release/deps/resipe_nn-92fa2289d2440b11.d: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libresipe_nn-92fa2289d2440b11.rlib: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libresipe_nn-92fa2289d2440b11.rmeta: crates/nn/src/lib.rs crates/nn/src/data.rs crates/nn/src/error.rs crates/nn/src/io.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/pool.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/network.rs crates/nn/src/tensor.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/data.rs:
crates/nn/src/error.rs:
crates/nn/src/io.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/network.rs:
crates/nn/src/tensor.rs:
crates/nn/src/train.rs:
