/root/repo/target/release/deps/fault_sweep-f93ebb47bbe49e87.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-f93ebb47bbe49e87: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
